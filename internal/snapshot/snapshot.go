// Package snapshot persists a fully built experiment world — generated
// topologies, population models, address plans, rDNS corpora, and traceroute
// campaigns — as one versioned binary blob, so a later process can skip
// regeneration entirely and cold-start in milliseconds.
//
// Version 2 is a zero-copy format: every hot array (the frozen CSR topology
// arena, link columns, dense per-AS metadata, population columns) is laid
// out 8-byte-aligned in the file and served directly from an mmap'd region
// without decoding — see Open and Reader. Only pointer-shaped state (the
// spec's profiles, tier sets, address plans, rDNS corpora, trace corpora)
// is decoded, lazily where possible. Loading therefore costs O(pages
// touched), not O(world size).
//
// The codec fails closed — a wrong magic, an unsupported version, an
// unknown section kind, a truncated stream, a misaligned or overlapping
// section table, or a checksum mismatch all abort the load with an error
// rather than yielding a partly decoded world. Integrity is per section: a
// header CRC covers the section table eagerly; cold sections are checked
// when decoded; mmap-served hot sections are checked by Verify (the
// `-verify` flag), so the zero-copy load path never has to touch every
// page. The eager Decode/Read/ReadFile entry points verify everything.
//
// Version 2 layout (all integers little-endian; hot payloads are raw
// host-endian arrays, so the format is little-endian-host only):
//
//	magic    [8]byte  "FLATSNAP"
//	version  uint32   2
//	scale    float64  the generation scale the world was built at
//	nsect    uint32   number of sections
//	table    nsect ×  { kind uint32, year uint32, off uint64, len uint64, crc uint32 }
//	hcrc     uint32   IEEE CRC-32 of every preceding byte
//	payloads           8-aligned, zero-padded gaps, file ends at the last payload
//
// Version 1 (a single concatenated stream of length-prefixed sections with
// one trailing CRC, every value decoded eagerly) is still read — see
// legacy.go — but no longer written.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/netip"
	"os"
	"sort"

	"flatnet/internal/astopo"
	"flatnet/internal/geo"
	"flatnet/internal/netdb"
	"flatnet/internal/population"
	"flatnet/internal/rdns"
	"flatnet/internal/topogen"
	"flatnet/internal/tracesim"
)

// Version is the current schema version. Readers accept it and
// VersionLegacy only: the payload encoding is positional, so there is no
// safe way to skip unknown fields within a section.
const Version = 2

// VersionLegacy is the v1 stream format, still decodable for old files.
const VersionLegacy = 1

var magic = [8]byte{'F', 'L', 'A', 'T', 'S', 'N', 'A', 'P'}

// Kind identifies a section's artifact type.
type Kind uint32

// Section kinds. The zero value is invalid so that zeroed corruption is
// caught structurally as well as by the checksum.
const (
	KindInternet   Kind = 1
	KindPopulation Kind = 2
	KindPlan       Kind = 3
	KindRDNS       Kind = 4
	KindTraces     Kind = 5
)

func (k Kind) String() string {
	switch k {
	case KindInternet:
		return "internet"
	case KindPopulation:
		return "population"
	case KindPlan:
		return "plan"
	case KindRDNS:
		return "rdns"
	case KindTraces:
		return "traces"
	}
	return fmt.Sprintf("kind(%d)", uint32(k))
}

// TraceKey identifies one cloud's traceroute campaign.
type TraceKey struct {
	Year  int
	Cloud string
	// VMs is the number of VM groups in the corpus.
	VMs int
}

// World is everything a snapshot carries, keyed by preset year. Any map may
// be partially populated — Write encodes what is present — but consumers
// (experiments.NewEnvFromWorld) validate that the artifacts they need exist.
type World struct {
	Scale     float64
	Internets map[int]*topogen.Internet
	Pops      map[int]*population.Model
	Plans     map[int]*netdb.Plan
	RDNS      map[int]*rdns.Corpus
	Traces    map[TraceKey][][]tracesim.Traceroute
}

// Info describes a snapshot without decoding its payloads.
type Info struct {
	Version  uint32
	Scale    float64
	Sections []SectionInfo
	// Delta carries the lineage of a delta snapshot (see delta.go); nil
	// for world snapshots.
	Delta *DeltaInfo
}

// SectionInfo labels one section. Label is the human-readable section
// name in either format version; Kind is set for v1 sections only. Cloud
// and VMs are set for traces sections only.
type SectionInfo struct {
	Kind   Kind
	Label  string
	Length uint64
	Year   int
	Cloud  string
	VMs    int
}

// Write encodes the world to w in the current (v2) format. Map iteration
// order never leaks into the output: all keys are sorted, so two equal
// worlds produce identical bytes.
func Write(w io.Writer, world *World) error {
	return writeV2(w, world)
}

// WriteFile writes the snapshot atomically: encode to path+".tmp", then
// rename, so a crash never leaves a half-written snapshot in place.
func WriteFile(path string, world *World) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(f, world); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Read decodes a snapshot. The entire stream is read and checksummed before
// any section is decoded; any structural problem aborts with an error and a
// nil world. Decoded plans are bound to their year's decoded Internet (a
// plan whose year has no internet section is an error — it would be
// unusable).
func Read(r io.Reader) (*World, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return Decode(raw)
}

// Decode is Read over bytes already in memory. Every section is verified
// and every value decoded eagerly; raw may be reused or freed after Decode
// returns. It accepts both the current and the legacy format.
func Decode(raw []byte) (*World, error) {
	v, err := sniffVersion(raw)
	if err != nil {
		return nil, err
	}
	if v == VersionLegacy {
		return decodeV1(raw)
	}
	return decodeV2(raw)
}

// sniffVersion validates the magic and returns the supported version.
func sniffVersion(raw []byte) (uint32, error) {
	if len(raw) < len(magic)+4 {
		return 0, fmt.Errorf("snapshot: truncated: %d bytes", len(raw))
	}
	var m [8]byte
	copy(m[:], raw)
	if m != magic {
		return 0, fmt.Errorf("snapshot: bad magic %q", m[:])
	}
	v := binary.LittleEndian.Uint32(raw[8:12])
	if v != Version && v != VersionLegacy {
		return 0, fmt.Errorf("snapshot: unsupported version %d (want %d)", v, Version)
	}
	return v, nil
}

// ReadFile reads and decodes the snapshot at path. The file is read in one
// pre-sized allocation (os.ReadFile), which is measurably cheaper than
// streaming growth for multi-megabyte snapshots.
func ReadFile(path string) (*World, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(raw)
}

// ReadInfo parses the header and section labels without decoding payloads
// or verifying checksums — it is meant for cheap inspection (`flatnet
// snapshot info`), not validation; use Read or Verify to validate.
func ReadInfo(r io.Reader) (*Info, error) {
	var hdr [8 + 4 + 8 + 4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: reading header: %w", err)
	}
	if !bytes.Equal(hdr[:8], magic[:]) {
		return nil, fmt.Errorf("snapshot: bad magic %q", hdr[:8])
	}
	info := &Info{
		Version: binary.LittleEndian.Uint32(hdr[8:12]),
		Scale:   math.Float64frombits(binary.LittleEndian.Uint64(hdr[12:20])),
	}
	nsect := int(binary.LittleEndian.Uint32(hdr[20:24]))
	switch info.Version {
	case VersionLegacy:
		return readInfoV1(r, info, nsect)
	case Version:
		return readInfoV2(r, info, nsect)
	}
	return nil, fmt.Errorf("snapshot: unsupported version %d (want %d)", info.Version, Version)
}

func sortedYears[V any](m map[int]V) []int {
	years := make([]int, 0, len(m))
	for y := range m {
		years = append(years, y)
	}
	sort.Ints(years)
	return years
}

// ---- primitive encoder / decoder ----

type enc struct {
	b   *bytes.Buffer
	tmp [8]byte
}

func (e *enc) u8(v uint8) { e.b.WriteByte(v) }
func (e *enc) u32(v uint32) {
	binary.LittleEndian.PutUint32(e.tmp[:4], v)
	e.b.Write(e.tmp[:4])
}
func (e *enc) u64(v uint64) {
	binary.LittleEndian.PutUint64(e.tmp[:8], v)
	e.b.Write(e.tmp[:8])
}
func (e *enc) i32(v int32)      { e.u32(uint32(v)) }
func (e *enc) i64(v int64)      { e.u64(uint64(v)) }
func (e *enc) f64(v float64)    { e.u64(math.Float64bits(v)) }
func (e *enc) asn(a astopo.ASN) { e.u32(uint32(a)) }
func (e *enc) boolean(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b.WriteString(s)
}

// addr encodes a netip.Addr as length-prefixed raw bytes (0 = invalid).
func (e *enc) addr(a netip.Addr) {
	if !a.IsValid() {
		e.u8(0)
		return
	}
	raw := a.AsSlice()
	e.u8(uint8(len(raw)))
	e.b.Write(raw)
}

func (e *enc) prefix(p netip.Prefix) {
	e.addr(p.Addr())
	e.u8(uint8(p.Bits() + 1)) // +1 so an invalid prefix's -1 encodes as 0
}

type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) ok() bool { return d.err == nil }

func (d *dec) fail() {
	if d.err == nil {
		d.err = io.ErrUnexpectedEOF
	}
}

func (d *dec) take(n int) []byte {
	if d.err != nil || n < 0 || n > len(d.buf)-d.off {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *dec) bytes(dst []byte) {
	if b := d.take(len(dst)); b != nil {
		copy(dst, b)
	}
}

func (d *dec) u8() uint8 {
	if b := d.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (d *dec) u32() uint32 {
	if b := d.take(4); b != nil {
		return binary.LittleEndian.Uint32(b)
	}
	return 0
}

func (d *dec) u64() uint64 {
	if b := d.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (d *dec) i32() int32      { return int32(d.u32()) }
func (d *dec) i64() int64      { return int64(d.u64()) }
func (d *dec) f64() float64    { return math.Float64frombits(d.u64()) }
func (d *dec) asn() astopo.ASN { return astopo.ASN(d.u32()) }
func (d *dec) boolean() bool   { return d.u8() != 0 }

func (d *dec) str() string {
	n := int(d.u32())
	if b := d.take(n); b != nil {
		return string(b)
	}
	return ""
}

// strShared decodes a string, returning want (no allocation) when the bytes
// match — the trace decoder uses it to share one cloud-name string across a
// whole corpus instead of allocating tens of thousands of copies.
func (d *dec) strShared(want string) string {
	n := int(d.u32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	if string(b) == want { // compiler-optimized comparison, no alloc
		return want
	}
	return string(b)
}

// count reads a length prefix and sanity-checks it against the remaining
// bytes (each element needs at least one byte), so a corrupted count cannot
// drive a huge allocation before the truncation is noticed.
func (d *dec) count() int {
	n := int(d.u32())
	if n < 0 || n > len(d.buf)-d.off {
		d.fail()
		return 0
	}
	return n
}

func (d *dec) addr() netip.Addr {
	n := int(d.u8())
	if n == 0 {
		return netip.Addr{}
	}
	b := d.take(n)
	if b == nil {
		return netip.Addr{}
	}
	a, ok := netip.AddrFromSlice(b)
	if !ok {
		d.fail()
	}
	return a
}

func (d *dec) prefix() netip.Prefix {
	a := d.addr()
	bits := int(d.u8()) - 1
	if d.err != nil || !a.IsValid() {
		return netip.Prefix{}
	}
	return netip.PrefixFrom(a, bits)
}

// ---- internet ----

func encodeProfiles(e *enc, ps []topogen.Profile) {
	e.u32(uint32(len(ps)))
	for _, p := range ps {
		e.str(p.Name)
		e.asn(p.ASN)
		e.u8(uint8(p.Class))
		e.u32(uint32(p.ProviderCount))
		e.u32(uint32(p.Tier1Provs))
		e.u32(uint32(len(p.PreferredProviders)))
		for _, a := range p.PreferredProviders {
			e.asn(a)
		}
		e.f64(p.PeerTier1)
		e.f64(p.PeerTier2)
		e.f64(p.PeerTransit)
		e.f64(p.PeerAccess)
		e.f64(p.PeerContent)
		e.u32(uint32(p.PoPCount))
		e.boolean(p.Global)
	}
}

func decodeProfiles(d *dec) []topogen.Profile {
	n := d.count()
	ps := make([]topogen.Profile, n)
	for i := range ps {
		p := &ps[i]
		p.Name = d.str()
		p.ASN = d.asn()
		p.Class = topogen.ASClass(d.u8())
		p.ProviderCount = int(d.u32())
		p.Tier1Provs = int(d.u32())
		m := d.count()
		if m > 0 {
			p.PreferredProviders = make([]astopo.ASN, m)
			for j := range p.PreferredProviders {
				p.PreferredProviders[j] = d.asn()
			}
		}
		p.PeerTier1 = d.f64()
		p.PeerTier2 = d.f64()
		p.PeerTransit = d.f64()
		p.PeerAccess = d.f64()
		p.PeerContent = d.f64()
		p.PoPCount = int(d.u32())
		p.Global = d.boolean()
		if d.err != nil {
			return nil
		}
	}
	return ps
}

func sortedASNs[V any](m map[astopo.ASN]V) []astopo.ASN {
	keys := make([]astopo.ASN, 0, len(m))
	for a := range m {
		keys = append(keys, a)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func encodeASSet(e *enc, s astopo.ASSet) {
	e.u32(uint32(len(s)))
	for _, a := range sortedASNs(s) {
		e.asn(a)
	}
}

func decodeASSet(d *dec) astopo.ASSet {
	n := d.count()
	s := make(astopo.ASSet, n)
	for i := 0; i < n; i++ {
		s[d.asn()] = struct{}{}
	}
	return s
}

func encodeNamedASNs(e *enc, m map[string]astopo.ASN) {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	e.u32(uint32(len(names)))
	for _, n := range names {
		e.str(n)
		e.asn(m[n])
	}
}

func decodeNamedASNs(d *dec) map[string]astopo.ASN {
	n := d.count()
	m := make(map[string]astopo.ASN, n)
	for i := 0; i < n; i++ {
		name := d.str()
		m[name] = d.asn()
	}
	return m
}

// encodeSpec writes the generation spec — the one pointer-shaped piece of
// an Internet that both format versions serialize field-by-field.
func encodeSpec(e *enc, sp *topogen.Spec) {
	e.str(sp.Name)
	e.i64(sp.Seed)
	e.u32(uint32(sp.NumASes))
	e.u32(uint32(sp.NumTransit))
	e.f64(sp.FracAccess)
	e.f64(sp.FracContent)
	e.u32(uint32(sp.NumIXPs))
	classes := make([]int, 0, len(sp.Openness))
	for c := range sp.Openness {
		classes = append(classes, int(c))
	}
	sort.Ints(classes)
	e.u32(uint32(len(classes)))
	for _, c := range classes {
		e.u8(uint8(c))
		e.f64(sp.Openness[topogen.ASClass(c)])
	}
	encodeProfiles(e, sp.Tier1)
	encodeProfiles(e, sp.Tier2)
	encodeProfiles(e, sp.Clouds)
	encodeProfiles(e, sp.Hypergiants)
}

func decodeSpec(d *dec, sp *topogen.Spec) {
	sp.Name = d.str()
	sp.Seed = d.i64()
	sp.NumASes = int(d.u32())
	sp.NumTransit = int(d.u32())
	sp.FracAccess = d.f64()
	sp.FracContent = d.f64()
	sp.NumIXPs = int(d.u32())
	nOpen := d.count()
	sp.Openness = make(map[topogen.ASClass]float64, nOpen)
	for i := 0; i < nOpen; i++ {
		c := topogen.ASClass(d.u8())
		sp.Openness[c] = d.f64()
	}
	sp.Tier1 = decodeProfiles(d)
	sp.Tier2 = decodeProfiles(d)
	sp.Clouds = decodeProfiles(d)
	sp.Hypergiants = decodeProfiles(d)
}

// ---- plan ----

func encodePlan(e *enc, year int, p *netdb.Plan) {
	e.u32(uint32(year))
	e.u32(uint32(len(p.ASPrefix)))
	for _, a := range sortedASNs(p.ASPrefix) {
		e.asn(a)
		e.prefix(p.ASPrefix[a])
	}
	e.u32(uint32(len(p.Extra)))
	for _, a := range sortedASNs(p.Extra) {
		e.asn(a)
		ps := p.Extra[a]
		e.u32(uint32(len(ps)))
		for _, pre := range ps {
			e.prefix(pre)
		}
	}
	e.u32(uint32(len(p.Infra)))
	for _, a := range sortedASNs(p.Infra) {
		e.asn(a)
		e.prefix(p.Infra[a])
	}
	e.u32(uint32(len(p.Lans)))
	for _, lan := range p.Lans {
		e.prefix(lan.Prefix)
		e.asn(lan.OperatorASN)
		e.boolean(lan.Announced)
		e.u32(uint32(len(lan.MemberAddr)))
		for _, a := range sortedASNs(lan.MemberAddr) {
			e.asn(a)
			e.addr(lan.MemberAddr[a])
		}
		stale := make([]netip.Addr, 0, len(lan.StaleEntries))
		for addr := range lan.StaleEntries {
			stale = append(stale, addr)
		}
		sort.Slice(stale, func(i, j int) bool { return stale[i].Compare(stale[j]) < 0 })
		e.u32(uint32(len(stale)))
		for _, addr := range stale {
			e.addr(addr)
			e.asn(lan.StaleEntries[addr])
		}
	}
	linkKeys := make([][2]astopo.ASN, 0, len(p.Links))
	for k := range p.Links {
		linkKeys = append(linkKeys, k)
	}
	sort.Slice(linkKeys, func(i, j int) bool {
		if linkKeys[i][0] != linkKeys[j][0] {
			return linkKeys[i][0] < linkKeys[j][0]
		}
		return linkKeys[i][1] < linkKeys[j][1]
	})
	e.u32(uint32(len(linkKeys)))
	for _, k := range linkKeys {
		num := p.Links[k]
		e.asn(k[0])
		e.asn(k[1])
		e.addr(num.AAddr)
		e.addr(num.BAddr)
		e.asn(num.Owner)
		e.i32(int32(num.IXP))
	}
}

func decodePlan(d *dec) (int, *netdb.Plan) {
	year := int(d.u32())
	p := &netdb.Plan{}
	n := d.count()
	p.ASPrefix = make(map[astopo.ASN]netip.Prefix, n)
	for i := 0; i < n; i++ {
		a := d.asn()
		p.ASPrefix[a] = d.prefix()
	}
	n = d.count()
	p.Extra = make(map[astopo.ASN][]netip.Prefix, n)
	for i := 0; i < n; i++ {
		a := d.asn()
		m := d.count()
		ps := make([]netip.Prefix, m)
		for j := range ps {
			ps[j] = d.prefix()
		}
		p.Extra[a] = ps
	}
	n = d.count()
	p.Infra = make(map[astopo.ASN]netip.Prefix, n)
	for i := 0; i < n; i++ {
		a := d.asn()
		p.Infra[a] = d.prefix()
	}
	n = d.count()
	p.Lans = make([]netdb.IXPLan, n)
	for i := range p.Lans {
		lan := &p.Lans[i]
		lan.Prefix = d.prefix()
		lan.OperatorASN = d.asn()
		lan.Announced = d.boolean()
		m := d.count()
		lan.MemberAddr = make(map[astopo.ASN]netip.Addr, m)
		for j := 0; j < m; j++ {
			a := d.asn()
			lan.MemberAddr[a] = d.addr()
		}
		m = d.count()
		lan.StaleEntries = make(map[netip.Addr]astopo.ASN, m)
		for j := 0; j < m; j++ {
			addr := d.addr()
			lan.StaleEntries[addr] = d.asn()
		}
	}
	n = d.count()
	p.Links = make(map[[2]astopo.ASN]netdb.LinkNumbering, n)
	for i := 0; i < n; i++ {
		var k [2]astopo.ASN
		k[0] = d.asn()
		k[1] = d.asn()
		var num netdb.LinkNumbering
		num.AAddr = d.addr()
		num.BAddr = d.addr()
		num.Owner = d.asn()
		num.IXP = int(d.i32())
		p.Links[k] = num
	}
	if d.err != nil {
		return year, nil
	}
	return year, p
}

// ---- rdns ----

func encodeRDNS(e *enc, year int, c *rdns.Corpus) {
	e.u32(uint32(year))
	e.u32(uint32(len(c.ByAS)))
	for _, a := range sortedASNs(c.ByAS) {
		e.asn(a)
		recs := c.ByAS[a]
		e.u32(uint32(len(recs)))
		for _, r := range recs {
			e.addr(r.Addr)
			e.str(r.Hostname)
		}
	}
	e.u32(uint32(len(c.Aliases)))
	for _, a := range sortedASNs(c.Aliases) {
		e.asn(a)
		groups := c.Aliases[a]
		e.u32(uint32(len(groups)))
		for _, g := range groups {
			e.u32(uint32(len(g)))
			for _, addr := range g {
				e.addr(addr)
			}
		}
	}
	e.u32(uint32(len(c.CoveredPoPs)))
	for _, a := range sortedASNs(c.CoveredPoPs) {
		e.asn(a)
		pops := c.CoveredPoPs[a]
		cities := make([]int, 0, len(pops))
		for c := range pops {
			cities = append(cities, int(c))
		}
		sort.Ints(cities)
		e.u32(uint32(len(cities)))
		for _, city := range cities {
			e.i32(int32(city))
			e.boolean(pops[geo.CityID(city)])
		}
	}
}

func decodeRDNS(d *dec) (int, *rdns.Corpus) {
	year := int(d.u32())
	c := &rdns.Corpus{}
	n := d.count()
	c.ByAS = make(map[astopo.ASN][]rdns.Record, n)
	for i := 0; i < n; i++ {
		a := d.asn()
		m := d.count()
		recs := make([]rdns.Record, m)
		for j := range recs {
			recs[j].Addr = d.addr()
			recs[j].Hostname = d.str()
		}
		c.ByAS[a] = recs
	}
	n = d.count()
	c.Aliases = make(map[astopo.ASN][][]netip.Addr, n)
	for i := 0; i < n; i++ {
		a := d.asn()
		m := d.count()
		groups := make([][]netip.Addr, m)
		for j := range groups {
			g := d.count()
			group := make([]netip.Addr, g)
			for k := range group {
				group[k] = d.addr()
			}
			groups[j] = group
		}
		c.Aliases[a] = groups
	}
	n = d.count()
	c.CoveredPoPs = make(map[astopo.ASN]map[geo.CityID]bool, n)
	for i := 0; i < n; i++ {
		a := d.asn()
		m := d.count()
		pops := make(map[geo.CityID]bool, m)
		for j := 0; j < m; j++ {
			city := geo.CityID(d.i32())
			pops[city] = d.boolean()
		}
		c.CoveredPoPs[a] = pops
	}
	if d.err != nil {
		return year, nil
	}
	return year, c
}

// ---- traces ----

func encodeTraces(e *enc, key TraceKey, tr [][]tracesim.Traceroute) {
	e.u32(uint32(key.Year))
	e.str(key.Cloud)
	e.u32(uint32(key.VMs))
	// Totals let the decoder allocate single arenas for all hops and path
	// entries of the corpus instead of two slices per traceroute.
	var totalHops, totalPath uint64
	for _, group := range tr {
		for i := range group {
			totalHops += uint64(len(group[i].Hops))
			totalPath += uint64(len(group[i].TruePath))
		}
	}
	e.u64(totalHops)
	e.u64(totalPath)
	e.u32(uint32(len(tr)))
	for _, group := range tr {
		e.u32(uint32(len(group)))
		for i := range group {
			t := &group[i]
			e.str(t.VM.Cloud)
			e.asn(t.VM.CloudASN)
			e.i32(int32(t.VM.City))
			e.u32(uint32(t.VM.Index))
			e.addr(t.Dst)
			e.asn(t.DstASN)
			e.u32(uint32(len(t.Hops)))
			for _, h := range t.Hops {
				e.i32(int32(h.TTL))
				e.addr(h.Addr)
				e.asn(h.TrueAS)
			}
			e.boolean(t.Reached)
			e.u32(uint32(len(t.TruePath)))
			for _, a := range t.TruePath {
				e.asn(a)
			}
			e.boolean(t.OnBestPath)
		}
	}
}

func decodeTraces(d *dec) (TraceKey, [][]tracesim.Traceroute) {
	var key TraceKey
	key.Year = int(d.u32())
	key.Cloud = d.str()
	key.VMs = int(d.u32())
	totalHops := d.u64()
	totalPath := d.u64()
	if d.err != nil || totalHops > uint64(len(d.buf)) || totalPath > uint64(len(d.buf)) {
		d.fail()
		return key, nil
	}
	hopArena := make([]tracesim.Hop, totalHops)
	pathArena := make([]astopo.ASN, totalPath)
	var hopOff, pathOff int
	n := d.count()
	tr := make([][]tracesim.Traceroute, n)
	for gi := range tr {
		m := d.count()
		group := make([]tracesim.Traceroute, m)
		for i := range group {
			t := &group[i]
			t.VM.Cloud = d.strShared(key.Cloud)
			t.VM.CloudASN = d.asn()
			t.VM.City = geo.CityID(d.i32())
			t.VM.Index = int(d.u32())
			t.Dst = d.addr()
			t.DstASN = d.asn()
			nh := d.count()
			if hopOff+nh > len(hopArena) {
				d.fail()
				return key, nil
			}
			hops := hopArena[hopOff : hopOff+nh : hopOff+nh]
			hopOff += nh
			for j := range hops {
				hops[j].TTL = int(d.i32())
				hops[j].Addr = d.addr()
				hops[j].TrueAS = d.asn()
			}
			if nh > 0 {
				t.Hops = hops
			}
			t.Reached = d.boolean()
			np := d.count()
			if pathOff+np > len(pathArena) {
				d.fail()
				return key, nil
			}
			path := pathArena[pathOff : pathOff+np : pathOff+np]
			pathOff += np
			for j := range path {
				path[j] = d.asn()
			}
			if np > 0 {
				t.TruePath = path
			}
			t.OnBestPath = d.boolean()
		}
		tr[gi] = group
	}
	return key, tr
}
