package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"os"
	"reflect"
	"slices"
	"strings"
	"testing"

	"flatnet/internal/netdb"
	"flatnet/internal/population"
	"flatnet/internal/rdns"
	"flatnet/internal/topogen"
	"flatnet/internal/tracesim"
)

// buildWorld assembles a small but fully populated world: one internet with
// a plan, rDNS corpus, population model, and a traceroute campaign.
func buildWorld(t testing.TB) *World {
	t.Helper()
	const scale = 0.00855 // ≈600 ASes under true-scale presets (1.0 = 69,488)
	in, err := topogen.Generate(topogen.Internet2020(scale))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := netdb.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	in15, err := topogen.Generate(topogen.Internet2015(scale))
	if err != nil {
		t.Fatal(err)
	}
	eng := tracesim.New(plan, tracesim.DefaultOptions(2020))
	vms, err := eng.VMs("Google", 3)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := eng.TraceAll(vms)
	if err != nil {
		t.Fatal(err)
	}
	return &World{
		Scale:     scale,
		Internets: map[int]*topogen.Internet{2020: in, 2015: in15},
		Pops:      map[int]*population.Model{2020: population.Build(in, 1.1)},
		Plans:     map[int]*netdb.Plan{2020: plan},
		RDNS:      map[int]*rdns.Corpus{2020: rdns.Synthesize(plan, 20200901)},
		Traces: map[TraceKey][][]tracesim.Traceroute{
			{Year: 2020, Cloud: "Google", VMs: len(vms)}: traces,
		},
	}
}

func encode(t testing.TB, w *World) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// checkInternetEqual compares two internets through the public surface:
// spec, links, tier sets, named networks, IXPs, and every AS's metadata.
func checkInternetEqual(t *testing.T, year int, got, want *topogen.Internet) {
	t.Helper()
	if got == nil {
		t.Fatalf("no %d internet after round trip", year)
	}
	if !reflect.DeepEqual(got.Spec, want.Spec) {
		t.Fatalf("%d spec differs", year)
	}
	if !slices.Equal(got.Graph.Links(), want.Graph.Links()) {
		t.Fatalf("%d links differ", year)
	}
	if !reflect.DeepEqual(got.Tier1, want.Tier1) || !reflect.DeepEqual(got.Tier2, want.Tier2) {
		t.Fatalf("%d tier sets differ after round trip", year)
	}
	if !reflect.DeepEqual(got.Clouds, want.Clouds) || !reflect.DeepEqual(got.Hypergiants, want.Hypergiants) {
		t.Fatalf("%d named networks differ after round trip", year)
	}
	if len(got.IXPs) != len(want.IXPs) {
		t.Fatalf("%d has %d IXPs, want %d", year, len(got.IXPs), len(want.IXPs))
	}
	for i := range got.IXPs {
		if got.IXPs[i].City != want.IXPs[i].City || !slices.Equal(got.IXPs[i].Members, want.IXPs[i].Members) {
			t.Fatalf("%d IXP %d differs after round trip", year, i)
		}
	}
	n := got.Graph.NumASes()
	if n != want.Graph.NumASes() {
		t.Fatalf("%d has %d ASes, want %d", year, n, want.Graph.NumASes())
	}
	for i := 0; i < n; i++ {
		if got.ClassAt(i) != want.ClassAt(i) || got.HomeCityAt(i) != want.HomeCityAt(i) ||
			got.NameAt(i) != want.NameAt(i) || !slices.Equal(got.PoPsAt(i), want.PoPsAt(i)) {
			t.Fatalf("%d AS index %d metadata differs after round trip", year, i)
		}
	}
}

func checkWorldEqual(t *testing.T, got, w *World) {
	t.Helper()
	if got.Scale != w.Scale {
		t.Fatalf("scale %v, want %v", got.Scale, w.Scale)
	}
	for year, in := range w.Internets {
		checkInternetEqual(t, year, got.Internets[year], in)
	}
	// Population: entries and the exact float total must survive.
	gotE, gotTotal := got.Pops[2020].Snapshot()
	wantE, wantTotal := w.Pops[2020].Snapshot()
	if !slices.Equal(gotE, wantE) {
		t.Fatal("population entries differ")
	}
	if math.Float64bits(gotTotal) != math.Float64bits(wantTotal) {
		t.Fatalf("population total %x differs from %x (must be bit-exact)",
			math.Float64bits(gotTotal), math.Float64bits(wantTotal))
	}
	// Plan: all maps equal, and the decoded plan is bound to the decoded
	// internet.
	gp, wp := got.Plans[2020], w.Plans[2020]
	if gp == nil {
		t.Fatal("no 2020 plan after round trip")
	}
	if gp.Internet() != got.Internets[2020] {
		t.Fatal("decoded plan not bound to decoded internet")
	}
	if !reflect.DeepEqual(gp.ASPrefix, wp.ASPrefix) || !reflect.DeepEqual(gp.Extra, wp.Extra) ||
		!reflect.DeepEqual(gp.Infra, wp.Infra) || !reflect.DeepEqual(gp.Lans, wp.Lans) ||
		!reflect.DeepEqual(gp.Links, wp.Links) {
		t.Fatal("plan differs after round trip")
	}
	if !reflect.DeepEqual(got.RDNS[2020], w.RDNS[2020]) {
		t.Fatal("rdns corpus differs after round trip")
	}
	if !reflect.DeepEqual(got.Traces, w.Traces) {
		t.Fatal("trace corpora differ after round trip")
	}
}

func TestRoundTrip(t *testing.T) {
	w := buildWorld(t)
	raw := encode(t, w)
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	checkWorldEqual(t, got, w)
}

// The mmap-backed Reader must serve the same world the eager decoder does,
// including the lazily decoded artifacts.
func TestOpenReader(t *testing.T) {
	w := buildWorld(t)
	path := t.TempDir() + "/world.snap"
	if err := WriteFile(path, w); err != nil {
		t.Fatal(err)
	}
	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Scale() != w.Scale {
		t.Fatalf("scale %v, want %v", r.Scale(), w.Scale)
	}
	if got, want := r.Years(), []int{2015, 2020}; !slices.Equal(got, want) {
		t.Fatalf("years %v, want %v", got, want)
	}
	if err := r.Verify(); err != nil {
		t.Fatal(err)
	}
	got, err := r.World()
	if err != nil {
		t.Fatal(err)
	}
	checkWorldEqual(t, got, w)
	keys := r.TraceKeys()
	if len(keys) != 1 || keys[0].Cloud != "Google" {
		t.Fatalf("trace keys = %v", keys)
	}
	if _, err := r.Plan(2015); err == nil {
		t.Fatal("plan for a year without one did not error")
	}
	if _, err := r.Traces(TraceKey{Year: 1999, Cloud: "x"}); err == nil {
		t.Fatal("unknown trace key did not error")
	}
}

// Equal worlds must produce identical bytes: nothing about map iteration
// order or pointer identity may leak into the encoding.
func TestDeterministicEncoding(t *testing.T) {
	w := buildWorld(t)
	a := encode(t, w)
	b := encode(t, w)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same world differ")
	}
	// And an encode of the decode must reproduce the original bytes.
	got, err := Read(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	c := encode(t, got)
	if !bytes.Equal(a, c) {
		t.Fatal("re-encoding a decoded world changed the bytes")
	}
}

// Any single-byte corruption must be rejected by the eager decoder: the
// header CRC covers the section table, per-section CRCs cover payloads, and
// padding gaps must be zero.
func TestCorruptionRejected(t *testing.T) {
	raw := encode(t, buildWorld(t))
	stride := len(raw) / 97
	if stride == 0 {
		stride = 1
	}
	for off := 0; off < len(raw); off += stride {
		bad := bytes.Clone(raw)
		bad[off] ^= 0x40
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipping byte %d of %d was not detected", off, len(raw))
		}
	}
}

// The zero-copy open path skips hot-section checksums by design; Verify
// must catch what it skipped.
func TestVerifyDetectsCorruption(t *testing.T) {
	w := buildWorld(t)
	raw := encode(t, w)
	dir := t.TempDir()
	stride := len(raw) / 29
	for off := 24; off < len(raw); off += stride {
		bad := bytes.Clone(raw)
		bad[off] ^= 0x40
		path := dir + "/bad.snap"
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		r, err := Open(path)
		if err != nil {
			continue // structurally rejected at open — also fine
		}
		err = r.Verify()
		r.Close()
		if err == nil {
			t.Fatalf("flipping byte %d of %d survived Open+Verify", off, len(raw))
		}
	}
}

func TestTruncationRejected(t *testing.T) {
	raw := encode(t, buildWorld(t))
	for _, n := range []int{0, 1, 7, 8, 23, 24, len(raw) / 3, len(raw) / 2, len(raw) - 5, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes was not detected", n, len(raw))
		}
	}
}

// reseal recomputes the header CRC after a deliberate patch, so tests
// exercise the structural checks rather than the checksum.
func reseal(raw []byte) []byte {
	out := bytes.Clone(raw)
	n := int(binary.LittleEndian.Uint32(out[20:24]))
	end := v2HeaderLen + v2EntryLen*n
	binary.LittleEndian.PutUint32(out[end:end+4], crc32.ChecksumIEEE(out[:end]))
	return out
}

func TestVersionMismatchRejected(t *testing.T) {
	raw := encode(t, buildWorld(t))
	bad := bytes.Clone(raw)
	binary.LittleEndian.PutUint32(bad[8:12], Version+1)
	bad = reseal(bad)
	_, err := Read(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("future version accepted (err=%v)", err)
	}
	if _, err := ReadInfo(bytes.NewReader(bad)); err == nil {
		t.Fatal("ReadInfo accepted a future version")
	}
}

func TestBadMagicRejected(t *testing.T) {
	raw := encode(t, buildWorld(t))
	bad := bytes.Clone(raw)
	bad[0] = 'X'
	bad = reseal(bad)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadInfo(bytes.NewReader(bad)); err == nil {
		t.Fatal("ReadInfo accepted bad magic")
	}
}

func TestUnknownSectionKindRejected(t *testing.T) {
	// Hand-build a minimal v2 stream with one unknown section.
	var buf bytes.Buffer
	var tmp [8]byte
	buf.Write(magic[:])
	binary.LittleEndian.PutUint32(tmp[:4], Version)
	buf.Write(tmp[:4])
	binary.LittleEndian.PutUint64(tmp[:8], math.Float64bits(1.0))
	buf.Write(tmp[:8])
	binary.LittleEndian.PutUint32(tmp[:4], 1) // one section
	buf.Write(tmp[:4])
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	binary.LittleEndian.PutUint32(tmp[:4], 99) // unknown kind
	buf.Write(tmp[:4])
	binary.LittleEndian.PutUint32(tmp[:4], 2020)
	buf.Write(tmp[:4])
	off := uint64(v2HeaderLen + v2EntryLen + 4)
	binary.LittleEndian.PutUint64(tmp[:8], off)
	buf.Write(tmp[:8])
	binary.LittleEndian.PutUint64(tmp[:8], uint64(len(payload)))
	buf.Write(tmp[:8])
	binary.LittleEndian.PutUint32(tmp[:4], crc32.ChecksumIEEE(payload))
	buf.Write(tmp[:4])
	buf.Write([]byte{0, 0, 0, 0}) // header CRC placeholder
	buf.Write(payload)
	sealed := reseal(buf.Bytes())
	_, err := Read(bytes.NewReader(sealed))
	if err == nil || !strings.Contains(err.Error(), "unknown section kind") {
		t.Fatalf("unknown section kind accepted (err=%v)", err)
	}
	if _, err := ReadInfo(bytes.NewReader(sealed)); err == nil {
		t.Fatal("ReadInfo accepted an unknown section kind")
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	raw := encode(t, buildWorld(t))
	bad := append(bytes.Clone(raw), 1, 2, 3, 4)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestPlanWithoutInternetRejected(t *testing.T) {
	w := buildWorld(t)
	orphan := &World{
		Scale: w.Scale,
		Plans: map[int]*netdb.Plan{2020: w.Plans[2020]},
	}
	raw := encode(t, orphan)
	_, err := Read(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "no internet section") {
		t.Fatalf("orphan plan accepted (err=%v)", err)
	}
}

func TestReadInfo(t *testing.T) {
	w := buildWorld(t)
	raw := encode(t, w)
	info, err := ReadInfo(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != Version || info.Scale != w.Scale {
		t.Fatalf("info header = %+v", info)
	}
	// 14 topology sections per internet + 2 population columns + plan +
	// rdns + traces.
	if len(info.Sections) != 14*2+2+3 {
		t.Fatalf("got %d sections, want %d", len(info.Sections), 14*2+2+3)
	}
	counts := map[string]int{}
	var total uint64
	for _, s := range info.Sections {
		counts[s.Label]++
		total += s.Length
		if s.Label == "traces" {
			if s.Year != 2020 || s.Cloud != "Google" || s.VMs != 3 {
				t.Fatalf("traces section label = %+v", s)
			}
		}
	}
	for label, want := range map[string]int{
		"world": 2, "nodes": 2, "adjacency-arena": 2, "link-ends": 2,
		"pop-types": 1, "pop-users": 1, "plan": 1, "rdns": 1, "traces": 1,
	} {
		if counts[label] != want {
			t.Fatalf("%d %s sections, want %d (all: %v)", counts[label], label, want, counts)
		}
	}
	// Header, table, payloads, and up to 7 padding bytes per section must
	// account for every byte.
	headerEnd := uint64(v2HeaderLen + v2EntryLen*len(info.Sections) + 4)
	if sum := headerEnd + total; sum > uint64(len(raw)) || uint64(len(raw))-sum > 8*uint64(len(info.Sections)) {
		t.Fatalf("section lengths sum to %d of %d file bytes", sum, len(raw))
	}
}

func TestWriteReadFile(t *testing.T) {
	w := buildWorld(t)
	path := t.TempDir() + "/world.snap"
	if err := WriteFile(path, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Traces, w.Traces) {
		t.Fatal("file round trip lost trace corpora")
	}
	var buf bytes.Buffer
	if err := Write(&buf, got); err != nil {
		t.Fatal(err)
	}
	disk, err := io.ReadAll(mustOpen(t, path))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), disk) {
		t.Fatal("re-encoding the file's world changed the bytes")
	}
}

// testdata/v1-mini.snap was written by the v1 encoder (scale 0.02 of the
// old presets ≈ 198 ASes, internets for 2015+2020, one plan, one rDNS
// corpus, one Google 2-VM campaign). Old files must keep loading through
// the legacy decoder, and re-encoding them must produce a loadable v2 file.
func TestLegacyV1Snapshot(t *testing.T) {
	w, err := ReadFile("testdata/v1-mini.snap")
	if err != nil {
		t.Fatal(err)
	}
	for _, year := range []int{2015, 2020} {
		in := w.Internets[year]
		if in == nil {
			t.Fatalf("v1 snapshot lost its %d internet", year)
		}
		if in.Graph.NumASes() == 0 || in.Meta == nil {
			t.Fatalf("v1 %d internet decoded empty", year)
		}
	}
	if w.Plans[2020] == nil || w.Plans[2020].Internet() != w.Internets[2020] {
		t.Fatal("v1 plan missing or unbound")
	}
	if w.RDNS[2020] == nil || w.Pops[2020] == nil {
		t.Fatal("v1 rdns or population missing")
	}
	key := TraceKey{Year: 2020, Cloud: "Google", VMs: 2}
	if len(w.Traces[key]) == 0 {
		t.Fatalf("v1 traces missing for %+v (have %d corpora)", key, len(w.Traces))
	}
	// Open (mmap path) is v2-only: v1 files must be rejected, not
	// misparsed.
	if _, err := Open("testdata/v1-mini.snap"); err == nil ||
		!strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("Open accepted a v1 file (err=%v)", err)
	}
	// And the migrated world must survive a v2 round trip.
	raw := encode(t, w)
	got, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	checkInternetEqual(t, 2020, got.Internets[2020], w.Internets[2020])
	if !reflect.DeepEqual(got.Traces, w.Traces) {
		t.Fatal("migrated trace corpora differ")
	}
}

func mustOpen(t *testing.T, path string) io.Reader {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}
