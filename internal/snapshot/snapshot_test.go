package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"os"
	"reflect"
	"slices"
	"strings"
	"testing"

	"flatnet/internal/netdb"
	"flatnet/internal/population"
	"flatnet/internal/rdns"
	"flatnet/internal/topogen"
	"flatnet/internal/tracesim"
)

// buildWorld assembles a small but fully populated world: one internet with
// a plan, rDNS corpus, population model, and a traceroute campaign.
func buildWorld(t testing.TB) *World {
	t.Helper()
	const scale = 0.06
	in, err := topogen.Generate(topogen.Internet2020(scale))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := netdb.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	in15, err := topogen.Generate(topogen.Internet2015(scale))
	if err != nil {
		t.Fatal(err)
	}
	eng := tracesim.New(plan, tracesim.DefaultOptions(2020))
	vms, err := eng.VMs("Google", 3)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := eng.TraceAll(vms)
	if err != nil {
		t.Fatal(err)
	}
	return &World{
		Scale:     scale,
		Internets: map[int]*topogen.Internet{2020: in, 2015: in15},
		Pops:      map[int]*population.Model{2020: population.Build(in, 1.1)},
		Plans:     map[int]*netdb.Plan{2020: plan},
		RDNS:      map[int]*rdns.Corpus{2020: rdns.Synthesize(plan, 20200901)},
		Traces: map[TraceKey][][]tracesim.Traceroute{
			{Year: 2020, Cloud: "Google", VMs: len(vms)}: traces,
		},
	}
}

func encode(t testing.TB, w *World) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	w := buildWorld(t)
	raw := encode(t, w)
	got, err := Read(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if got.Scale != w.Scale {
		t.Fatalf("scale %v, want %v", got.Scale, w.Scale)
	}
	for year, in := range w.Internets {
		g := got.Internets[year]
		if g == nil {
			t.Fatalf("no %d internet after round trip", year)
		}
		if !reflect.DeepEqual(g.Spec, in.Spec) {
			t.Fatalf("%d spec differs", year)
		}
		if !slices.Equal(g.Graph.Links(), in.Graph.Links()) {
			t.Fatalf("%d links differ", year)
		}
		for name, a := range map[string]any{
			"tier1": [2]any{g.Tier1, in.Tier1}, "tier2": [2]any{g.Tier2, in.Tier2},
			"clouds": [2]any{g.Clouds, in.Clouds}, "hypergiants": [2]any{g.Hypergiants, in.Hypergiants},
			"class": [2]any{g.Class, in.Class}, "name": [2]any{g.Name, in.Name},
			"homecity": [2]any{g.HomeCity, in.HomeCity}, "pops": [2]any{g.PoPs, in.PoPs},
			"ixps": [2]any{g.IXPs, in.IXPs},
		} {
			pair := a.([2]any)
			if !reflect.DeepEqual(pair[0], pair[1]) {
				t.Fatalf("%d %s differs after round trip", year, name)
			}
		}
	}
	// Population: entries and the exact float total must survive.
	gotE, gotTotal := got.Pops[2020].Snapshot()
	wantE, wantTotal := w.Pops[2020].Snapshot()
	if !slices.Equal(gotE, wantE) {
		t.Fatal("population entries differ")
	}
	if math.Float64bits(gotTotal) != math.Float64bits(wantTotal) {
		t.Fatalf("population total %x differs from %x (must be bit-exact)",
			math.Float64bits(gotTotal), math.Float64bits(wantTotal))
	}
	// Plan: all maps equal, and the decoded plan is bound to the decoded
	// internet.
	gp, wp := got.Plans[2020], w.Plans[2020]
	if gp == nil {
		t.Fatal("no 2020 plan after round trip")
	}
	if gp.Internet() != got.Internets[2020] {
		t.Fatal("decoded plan not bound to decoded internet")
	}
	if !reflect.DeepEqual(gp.ASPrefix, wp.ASPrefix) || !reflect.DeepEqual(gp.Extra, wp.Extra) ||
		!reflect.DeepEqual(gp.Infra, wp.Infra) || !reflect.DeepEqual(gp.Lans, wp.Lans) ||
		!reflect.DeepEqual(gp.Links, wp.Links) {
		t.Fatal("plan differs after round trip")
	}
	if !reflect.DeepEqual(got.RDNS[2020], w.RDNS[2020]) {
		t.Fatal("rdns corpus differs after round trip")
	}
	if !reflect.DeepEqual(got.Traces, w.Traces) {
		t.Fatal("trace corpora differ after round trip")
	}
}

// Equal worlds must produce identical bytes: nothing about map iteration
// order or pointer identity may leak into the encoding.
func TestDeterministicEncoding(t *testing.T) {
	w := buildWorld(t)
	a := encode(t, w)
	b := encode(t, w)
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same world differ")
	}
	// And an encode of the decode must reproduce the original bytes.
	got, err := Read(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	c := encode(t, got)
	if !bytes.Equal(a, c) {
		t.Fatal("re-encoding a decoded world changed the bytes")
	}
}

// Any single-byte corruption must be rejected — the trailing CRC covers the
// whole stream, including the header.
func TestCorruptionRejected(t *testing.T) {
	raw := encode(t, buildWorld(t))
	stride := len(raw) / 97
	if stride == 0 {
		stride = 1
	}
	for off := 0; off < len(raw); off += stride {
		bad := bytes.Clone(raw)
		bad[off] ^= 0x40
		if _, err := Read(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flipping byte %d of %d was not detected", off, len(raw))
		}
	}
}

func TestTruncationRejected(t *testing.T) {
	raw := encode(t, buildWorld(t))
	for _, n := range []int{0, 1, 7, 8, 23, 24, len(raw) / 3, len(raw) / 2, len(raw) - 5, len(raw) - 1} {
		if _, err := Read(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes was not detected", n, len(raw))
		}
	}
}

// reseal recomputes the trailing CRC after a deliberate patch, so the test
// exercises the structural check rather than the checksum.
func reseal(raw []byte) []byte {
	out := bytes.Clone(raw)
	body := out[:len(out)-4]
	binary.LittleEndian.PutUint32(out[len(out)-4:], crc32.ChecksumIEEE(body))
	return out
}

func TestVersionMismatchRejected(t *testing.T) {
	raw := encode(t, buildWorld(t))
	bad := bytes.Clone(raw)
	binary.LittleEndian.PutUint32(bad[8:12], Version+1)
	bad = reseal(bad)
	_, err := Read(bytes.NewReader(bad))
	if err == nil || !strings.Contains(err.Error(), "unsupported version") {
		t.Fatalf("future version accepted (err=%v)", err)
	}
	if _, err := ReadInfo(bytes.NewReader(bad)); err == nil {
		t.Fatal("ReadInfo accepted a future version")
	}
}

func TestBadMagicRejected(t *testing.T) {
	raw := encode(t, buildWorld(t))
	bad := bytes.Clone(raw)
	bad[0] = 'X'
	bad = reseal(bad)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadInfo(bytes.NewReader(bad)); err == nil {
		t.Fatal("ReadInfo accepted bad magic")
	}
}

func TestUnknownSectionKindRejected(t *testing.T) {
	// Hand-build a minimal stream with one unknown section.
	var buf bytes.Buffer
	buf.Write(magic[:])
	var tmp [8]byte
	binary.LittleEndian.PutUint32(tmp[:4], Version)
	buf.Write(tmp[:4])
	binary.LittleEndian.PutUint64(tmp[:8], math.Float64bits(1.0))
	buf.Write(tmp[:8])
	binary.LittleEndian.PutUint32(tmp[:4], 1) // one section
	buf.Write(tmp[:4])
	binary.LittleEndian.PutUint32(tmp[:4], 99) // unknown kind
	buf.Write(tmp[:4])
	binary.LittleEndian.PutUint64(tmp[:8], 4) // payload: just a year
	buf.Write(tmp[:8])
	binary.LittleEndian.PutUint32(tmp[:4], 2020)
	buf.Write(tmp[:4])
	sealed := append(buf.Bytes(), 0, 0, 0, 0)
	sealed = reseal(sealed)
	_, err := Read(bytes.NewReader(sealed))
	if err == nil || !strings.Contains(err.Error(), "unknown section kind") {
		t.Fatalf("unknown section kind accepted (err=%v)", err)
	}
	if _, err := ReadInfo(bytes.NewReader(sealed)); err == nil {
		t.Fatal("ReadInfo accepted an unknown section kind")
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	raw := encode(t, buildWorld(t))
	bad := append(bytes.Clone(raw[:len(raw)-4]), 1, 2, 3, 4)
	bad = append(bad, 0, 0, 0, 0)
	bad = reseal(bad)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

func TestPlanWithoutInternetRejected(t *testing.T) {
	w := buildWorld(t)
	orphan := &World{
		Scale: w.Scale,
		Plans: map[int]*netdb.Plan{2020: w.Plans[2020]},
	}
	raw := encode(t, orphan)
	_, err := Read(bytes.NewReader(raw))
	if err == nil || !strings.Contains(err.Error(), "no internet section") {
		t.Fatalf("orphan plan accepted (err=%v)", err)
	}
}

func TestReadInfo(t *testing.T) {
	w := buildWorld(t)
	raw := encode(t, w)
	info, err := ReadInfo(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != Version || info.Scale != w.Scale {
		t.Fatalf("info header = %+v", info)
	}
	// 2 internets + 1 pop + 1 plan + 1 rdns + 1 traces.
	if len(info.Sections) != 6 {
		t.Fatalf("got %d sections, want 6", len(info.Sections))
	}
	counts := map[Kind]int{}
	var total uint64
	for _, s := range info.Sections {
		counts[s.Kind]++
		total += s.Length
		if s.Kind == KindTraces {
			if s.Year != 2020 || s.Cloud != "Google" || s.VMs != 3 {
				t.Fatalf("traces section label = %+v", s)
			}
		}
	}
	want := map[Kind]int{KindInternet: 2, KindPopulation: 1, KindPlan: 1, KindRDNS: 1, KindTraces: 1}
	if !reflect.DeepEqual(counts, want) {
		t.Fatalf("section kinds = %v, want %v", counts, want)
	}
	// Header(24) + 12 per section header + payloads + crc(4) must account
	// for every byte.
	if got := 24 + 12*uint64(len(info.Sections)) + total + 4; got != uint64(len(raw)) {
		t.Fatalf("section lengths sum to %d, file is %d bytes", got, len(raw))
	}
}

func TestWriteReadFile(t *testing.T) {
	w := buildWorld(t)
	path := t.TempDir() + "/world.snap"
	if err := WriteFile(path, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Traces, w.Traces) {
		t.Fatal("file round trip lost trace corpora")
	}
	var buf bytes.Buffer
	if err := Write(&buf, got); err != nil {
		t.Fatal(err)
	}
	disk, err := io.ReadAll(mustOpen(t, path))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), disk) {
		t.Fatal("re-encoding the file's world changed the bytes")
	}
}

func mustOpen(t *testing.T, path string) io.Reader {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}
