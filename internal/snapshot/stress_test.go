package snapshot

import (
	"bufio"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"flatnet/internal/bgpsim"
	"flatnet/internal/topogen"
)

// TestStressScale20 builds the ~1.39M-AS stress world (scale 20), round-
// trips it through a bare snapshot (topology only — the address plan tops
// out at 86,016 ASes), and answers a reachability query from the mapping.
// This is the capacity envelope the README's scale table quotes. It takes
// minutes and several GB of RSS, so it only runs when FLATNET_STRESS=1.
func TestStressScale20(t *testing.T) {
	if os.Getenv("FLATNET_STRESS") == "" {
		t.Skip("set FLATNET_STRESS=1 to run the scale-20 stress build")
	}
	start := time.Now()
	in, err := topogen.Generate(topogen.Internet2020(20))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("generated %d ASes, %d links in %v",
		in.Graph.NumASes(), in.Graph.NumLinks(), time.Since(start).Round(time.Millisecond))

	path := filepath.Join(t.TempDir(), "world20.snap")
	start = time.Now()
	if err := WriteFile(path, &World{Scale: 20, Internets: map[int]*topogen.Internet{2020: in}}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("snapshot: %.1f MiB written in %v", float64(st.Size())/(1<<20), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	rd, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	got := rd.Internet(2020)
	if got == nil {
		t.Fatal("no 2020 internet in snapshot")
	}
	sim := bgpsim.New(got.Graph)
	count, err := sim.ReachabilityCount(bgpsim.Config{Origin: got.Clouds["Google"]})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if count < got.Graph.NumASes()/2 {
		t.Errorf("Google reaches only %d of %d ASes", count, got.Graph.NumASes())
	}
	t.Logf("mmap load + first reachability query: Google reaches %d of %d ASes in %v",
		count, got.Graph.NumASes(), elapsed.Round(time.Millisecond))

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("heap in use: %.1f GiB, RSS: %s", float64(ms.HeapInuse)/(1<<30), vmRSS(t))
}

// vmRSS reads the process's resident set size from /proc (linux-only; the
// stress test is gated anyway).
func vmRSS(t *testing.T) string {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "VmRSS:") {
			return strings.TrimSpace(strings.TrimPrefix(sc.Text(), "VmRSS:"))
		}
	}
	return "unknown"
}
