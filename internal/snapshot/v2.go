package snapshot

// The version 2 format: a section table up front (kind, year, offset,
// length, CRC per entry, the whole table guarded by a header CRC) followed
// by 8-byte-aligned payloads. Hot payloads — the frozen CSR topology, link
// columns, dense per-AS metadata, population columns — are raw host-endian
// arrays written with a single cast and served back the same way from an
// mmap'd file, so loading touches O(pages used) instead of decoding the
// world. Cold payloads (spec, tier sets, plans, rDNS, traces) keep the v1
// field-by-field encoding inside their sections and are decoded eagerly
// (world) or lazily (plan/rdns/traces) by Reader.
//
// Integrity: the header CRC and the world sections are checked on every
// open; plan/rdns/traces sections are checked when first decoded; hot
// array sections are checked only by Verify, because checksumming them on
// open would touch every page and forfeit the zero-copy win. Offset
// arrays inside hot sections are still shape- and monotonicity-validated
// on open, so a corrupted snapshot without Verify fails closed or returns
// wrong numbers — it never indexes out of bounds.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"
	"sort"
	"sync"
	"unsafe"

	"flatnet/internal/astopo"
	"flatnet/internal/geo"
	"flatnet/internal/mmap"
	"flatnet/internal/netdb"
	"flatnet/internal/population"
	"flatnet/internal/rdns"
	"flatnet/internal/topogen"
	"flatnet/internal/tracesim"
)

// sectKind identifies a v2 section's payload. The zero value is invalid so
// zeroed corruption is caught structurally as well as by the CRCs.
type sectKind uint32

const (
	// Cold per-year state: spec, tier sets, named networks.
	sectWorld sectKind = 1
	// Hot topology arrays (astopo.Frozen).
	sectNodes    sectKind = 2 // []ASN, sorted
	sectRowOffs  sectKind = 3 // provider, customer, peer offsets: 3×(n+1) int32
	sectArena    sectKind = 4 // CSR adjacency arena: 2m int32
	sectLinkEnds sectKind = 5 // link columns A then B: 2m ASN
	sectLinkRel  sectKind = 6 // link relationships: m int8
	// Hot per-AS metadata arrays (topogen.ASMeta).
	sectClass    sectKind = 7  // n ASClass bytes
	sectHome     sectKind = 8  // n CityID int32
	sectPoPOff   sectKind = 9  // n+1 int32
	sectPoPArena sectKind = 10 // CityID int32
	sectNameOff  sectKind = 11 // n+1 int32
	sectNameBlob sectKind = 12 // raw name bytes
	// IXPs: cities then member offsets (2k+1 int32), and the member arena.
	sectIXPTable   sectKind = 13
	sectIXPMembers sectKind = 14 // []ASN
	// Hot population columns, parallel to sectNodes.
	sectPopTypes sectKind = 15 // n ASType bytes
	sectPopUsers sectKind = 16 // total float64, then n float64
	// Cold lazily-decoded artifacts, payloads identical to their v1 form.
	sectPlan   sectKind = 17
	sectRDNS   sectKind = 18
	sectTraces sectKind = 19
	// A growth delta between two adjacent worlds (see delta.go). Lives in
	// its own file: a snapshot either carries worlds or one delta, never
	// both.
	sectDelta sectKind = 20
)

func (k sectKind) String() string {
	switch k {
	case sectWorld:
		return "world"
	case sectNodes:
		return "nodes"
	case sectRowOffs:
		return "row-offsets"
	case sectArena:
		return "adjacency-arena"
	case sectLinkEnds:
		return "link-ends"
	case sectLinkRel:
		return "link-rels"
	case sectClass:
		return "as-class"
	case sectHome:
		return "as-home"
	case sectPoPOff:
		return "pop-offsets"
	case sectPoPArena:
		return "pop-arena"
	case sectNameOff:
		return "name-offsets"
	case sectNameBlob:
		return "name-blob"
	case sectIXPTable:
		return "ixp-table"
	case sectIXPMembers:
		return "ixp-members"
	case sectPopTypes:
		return "pop-types"
	case sectPopUsers:
		return "pop-users"
	case sectPlan:
		return "plan"
	case sectRDNS:
		return "rdns"
	case sectTraces:
		return "traces"
	case sectDelta:
		return "delta"
	}
	return fmt.Sprintf("kind(%d)", uint32(k))
}

func knownSectKind(k sectKind) bool { return k >= sectWorld && k <= sectDelta }

const (
	v2HeaderLen = 8 + 4 + 8 + 4     // magic, version, scale, nsect
	v2EntryLen  = 4 + 4 + 8 + 8 + 4 // kind, year, off, len, crc
)

// hostLE reports whether this machine is little-endian. Hot sections are
// raw host-endian arrays, so the format is only read and written on
// little-endian hosts (every supported target today).
var hostLE = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// rawBytes reinterprets a scalar slice as its underlying bytes, in place.
func rawBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*int(unsafe.Sizeof(s[0])))
}

// castSlice reinterprets payload bytes as a scalar slice without copying.
// If the bytes happen to be misaligned for T (possible only on the
// read-into-heap fallback path), it copies into fresh memory instead.
func castSlice[T any](b []byte) ([]T, error) {
	var z T
	sz := int(unsafe.Sizeof(z))
	if len(b)%sz != 0 {
		return nil, fmt.Errorf("length %d is not a multiple of %d", len(b), sz)
	}
	n := len(b) / sz
	if n == 0 {
		return nil, nil
	}
	p := unsafe.SliceData(b)
	if uintptr(unsafe.Pointer(p))%uintptr(unsafe.Alignof(z)) != 0 {
		out := make([]T, n)
		copy(rawBytes(out), b)
		return out, nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(p)), n), nil
}

// ---- writer ----

type v2sect struct {
	kind   sectKind
	year   uint32
	chunks [][]byte
}

func (s *v2sect) size() uint64 {
	var n uint64
	for _, c := range s.chunks {
		n += uint64(len(c))
	}
	return n
}

func (s *v2sect) crc() uint32 {
	h := crc32.NewIEEE()
	for _, c := range s.chunks {
		h.Write(c)
	}
	return h.Sum32()
}

func writeV2(w io.Writer, world *World) error {
	if !hostLE {
		return fmt.Errorf("snapshot: v2 format requires a little-endian host")
	}
	var sections []v2sect
	add := func(kind sectKind, year int, chunks ...[]byte) {
		sections = append(sections, v2sect{kind: kind, year: uint32(year), chunks: chunks})
	}
	for _, year := range sortedYears(world.Pops) {
		if world.Internets[year] == nil {
			return fmt.Errorf("snapshot: population for year %d has no internet", year)
		}
	}
	for _, year := range sortedYears(world.Internets) {
		in := world.Internets[year]
		if in.Meta == nil {
			return fmt.Errorf("snapshot: internet %d has no metadata table", year)
		}
		f := in.Graph.Frozen()
		e := &enc{b: new(bytes.Buffer)}
		e.u32(uint32(year))
		encodeSpec(e, &in.Spec)
		encodeASSet(e, in.Tier1)
		encodeASSet(e, in.Tier2)
		encodeNamedASNs(e, in.Clouds)
		encodeNamedASNs(e, in.Hypergiants)
		add(sectWorld, year, e.b.Bytes())
		add(sectNodes, year, rawBytes(f.Nodes))
		add(sectRowOffs, year, rawBytes(f.ProvOff), rawBytes(f.CustOff), rawBytes(f.PeerOff))
		add(sectArena, year, rawBytes(f.Arena))
		add(sectLinkEnds, year, rawBytes(f.LinkA), rawBytes(f.LinkB))
		add(sectLinkRel, year, rawBytes(f.LinkRel))
		meta := in.Meta
		add(sectClass, year, rawBytes(meta.Class))
		add(sectHome, year, rawBytes(meta.Home))
		add(sectPoPOff, year, rawBytes(meta.PoPOff))
		add(sectPoPArena, year, rawBytes(meta.PoPArena))
		add(sectNameOff, year, rawBytes(meta.NameOff))
		add(sectNameBlob, year, meta.NameBlob)
		k := len(in.IXPs)
		tbl := make([]int32, 2*k+1)
		var nMembers int
		for _, x := range in.IXPs {
			nMembers += len(x.Members)
		}
		members := make([]astopo.ASN, 0, nMembers)
		for i, x := range in.IXPs {
			tbl[i] = int32(x.City)
			tbl[k+i] = int32(len(members))
			members = append(members, x.Members...)
		}
		tbl[2*k] = int32(len(members))
		add(sectIXPTable, year, rawBytes(tbl))
		add(sectIXPMembers, year, rawBytes(members))
		if pop := world.Pops[year]; pop != nil {
			asns, types, users, total := pop.Dense()
			if !slices.Equal(asns, f.Nodes) {
				return fmt.Errorf("snapshot: population for year %d is not aligned with its graph", year)
			}
			head := make([]byte, 8)
			binary.LittleEndian.PutUint64(head, math.Float64bits(total))
			add(sectPopTypes, year, rawBytes(types))
			add(sectPopUsers, year, head, rawBytes(users))
		}
	}
	for _, year := range sortedYears(world.Plans) {
		e := &enc{b: new(bytes.Buffer)}
		encodePlan(e, year, world.Plans[year])
		add(sectPlan, year, e.b.Bytes())
	}
	for _, year := range sortedYears(world.RDNS) {
		e := &enc{b: new(bytes.Buffer)}
		encodeRDNS(e, year, world.RDNS[year])
		add(sectRDNS, year, e.b.Bytes())
	}
	keys := make([]TraceKey, 0, len(world.Traces))
	for k := range world.Traces {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Year != b.Year {
			return a.Year < b.Year
		}
		if a.Cloud != b.Cloud {
			return a.Cloud < b.Cloud
		}
		return a.VMs < b.VMs
	})
	for _, k := range keys {
		e := &enc{b: new(bytes.Buffer)}
		encodeTraces(e, k, world.Traces[k])
		add(sectTraces, k.Year, e.b.Bytes())
	}

	// Lay out payload offsets: 8-aligned, back to back, zero-padded gaps,
	// nothing after the last payload.
	headerEnd := uint64(v2HeaderLen + v2EntryLen*len(sections) + 4)
	pos := headerEnd
	offs := make([]uint64, len(sections))
	for i := range sections {
		pos = (pos + 7) &^ 7
		offs[i] = pos
		pos += sections[i].size()
	}

	header := make([]byte, headerEnd)
	copy(header, magic[:])
	binary.LittleEndian.PutUint32(header[8:], Version)
	binary.LittleEndian.PutUint64(header[12:], math.Float64bits(world.Scale))
	binary.LittleEndian.PutUint32(header[20:], uint32(len(sections)))
	for i := range sections {
		ent := header[v2HeaderLen+i*v2EntryLen:]
		binary.LittleEndian.PutUint32(ent[0:], uint32(sections[i].kind))
		binary.LittleEndian.PutUint32(ent[4:], sections[i].year)
		binary.LittleEndian.PutUint64(ent[8:], offs[i])
		binary.LittleEndian.PutUint64(ent[16:], sections[i].size())
		binary.LittleEndian.PutUint32(ent[24:], sections[i].crc())
	}
	binary.LittleEndian.PutUint32(header[headerEnd-4:], crc32.ChecksumIEEE(header[:headerEnd-4]))

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(header); err != nil {
		return err
	}
	var pad [8]byte
	cur := headerEnd
	for i := range sections {
		if gap := offs[i] - cur; gap > 0 {
			if _, err := bw.Write(pad[:gap]); err != nil {
				return err
			}
			cur += gap
		}
		for _, c := range sections[i].chunks {
			if _, err := bw.Write(c); err != nil {
				return err
			}
			cur += uint64(len(c))
		}
	}
	return bw.Flush()
}

// ---- reader ----

type v2entry struct {
	kind   sectKind
	year   int
	off    uint64
	length uint64
	crc    uint32
}

// Reader serves a v2 snapshot from its raw bytes — normally an mmap'd
// file, so construction touches only the header, the cold world sections,
// and the offset arrays it validates, not the bulk payloads. Topology,
// metadata, and population columns are wired directly over the underlying
// memory with zero copies; plans, rDNS corpora, and trace corpora are
// decoded (and CRC-checked) on first use.
//
// The returned structures borrow the Reader's memory: they are valid until
// Close and must be treated as read-only. Reader methods are safe for
// concurrent use.
type Reader struct {
	m   *mmap.Mapping // nil when serving in-memory bytes
	raw []byte

	scale     float64
	entries   []v2entry
	internets map[int]*topogen.Internet
	pops      map[int]*population.Model
	traceIdx  map[TraceKey]int // entry index per campaign

	mu     sync.Mutex
	plans  map[int]*netdb.Plan
	rdnsC  map[int]*rdns.Corpus
	traces map[TraceKey][][]tracesim.Traceroute
}

// Open maps the snapshot at path and wires a Reader over it. Time to
// first query is O(header + cold sections); the bulk arrays fault in on
// demand. Open accepts only the v2 format — use ReadFile for a
// version-agnostic eager load.
func Open(path string) (*Reader, error) {
	m, err := mmap.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := newReader(m.Data(), m)
	if err != nil {
		m.Close()
		return nil, err
	}
	return r, nil
}

// decodeV2 eagerly loads a v2 snapshot from in-memory bytes: every section
// is CRC-verified and every artifact decoded before returning, matching
// the legacy Decode contract.
func decodeV2(raw []byte) (*World, error) {
	r, err := newReader(raw, nil)
	if err != nil {
		return nil, err
	}
	if err := r.Verify(); err != nil {
		return nil, err
	}
	return r.World()
}

func newReader(raw []byte, m *mmap.Mapping) (*Reader, error) {
	if !hostLE {
		return nil, fmt.Errorf("snapshot: v2 format requires a little-endian host")
	}
	if len(raw) < v2HeaderLen+4 {
		return nil, fmt.Errorf("snapshot: truncated: %d bytes", len(raw))
	}
	var mg [8]byte
	copy(mg[:], raw)
	if mg != magic {
		return nil, fmt.Errorf("snapshot: bad magic %q", mg[:])
	}
	if v := binary.LittleEndian.Uint32(raw[8:12]); v != Version {
		return nil, fmt.Errorf("snapshot: unsupported version %d (want %d)", v, Version)
	}
	r := &Reader{
		m:         m,
		raw:       raw,
		scale:     math.Float64frombits(binary.LittleEndian.Uint64(raw[12:20])),
		internets: make(map[int]*topogen.Internet),
		pops:      make(map[int]*population.Model),
		traceIdx:  make(map[TraceKey]int),
		plans:     make(map[int]*netdb.Plan),
		rdnsC:     make(map[int]*rdns.Corpus),
		traces:    make(map[TraceKey][][]tracesim.Traceroute),
	}
	nsect := int(binary.LittleEndian.Uint32(raw[20:24]))
	headerEnd := v2HeaderLen + v2EntryLen*nsect + 4
	if nsect < 0 || headerEnd > len(raw) {
		return nil, fmt.Errorf("snapshot: truncated: %d sections do not fit %d bytes", nsect, len(raw))
	}
	if got, want := crc32.ChecksumIEEE(raw[:headerEnd-4]), binary.LittleEndian.Uint32(raw[headerEnd-4:headerEnd]); got != want {
		return nil, fmt.Errorf("snapshot: header checksum mismatch: computed %#x, stored %#x", got, want)
	}
	r.entries = make([]v2entry, nsect)
	pos := uint64(headerEnd)
	for i := range r.entries {
		ent := raw[v2HeaderLen+i*v2EntryLen:]
		e := v2entry{
			kind:   sectKind(binary.LittleEndian.Uint32(ent[0:])),
			year:   int(binary.LittleEndian.Uint32(ent[4:])),
			off:    binary.LittleEndian.Uint64(ent[8:]),
			length: binary.LittleEndian.Uint64(ent[16:]),
			crc:    binary.LittleEndian.Uint32(ent[24:]),
		}
		if !knownSectKind(e.kind) {
			return nil, fmt.Errorf("snapshot: unknown section kind %d", uint32(e.kind))
		}
		if e.kind == sectDelta {
			return nil, fmt.Errorf("%w; apply it to its base snapshot instead of opening it", ErrIsDelta)
		}
		if e.off%8 != 0 {
			return nil, fmt.Errorf("snapshot: section %d (%s) misaligned at offset %d", i, e.kind, e.off)
		}
		if e.off < pos || e.off > uint64(len(raw)) || e.length > uint64(len(raw))-e.off {
			return nil, fmt.Errorf("snapshot: section %d (%s) spans [%d,%d) outside remaining [%d,%d)",
				i, e.kind, e.off, e.off+e.length, pos, len(raw))
		}
		for _, b := range raw[pos:e.off] {
			if b != 0 {
				return nil, fmt.Errorf("snapshot: nonzero padding before section %d (%s)", i, e.kind)
			}
		}
		pos = e.off + e.length
		r.entries[i] = e
	}
	if pos != uint64(len(raw)) {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after last section", uint64(len(raw))-pos)
	}

	// Group per-year sections and wire each year's Internet.
	byYear := make(map[int]map[sectKind]int)
	for i, e := range r.entries {
		switch e.kind {
		case sectPlan, sectRDNS:
			// Lazily decoded; located by linear scan at use time. Reject
			// duplicates now so lookup is unambiguous.
			for j := 0; j < i; j++ {
				if r.entries[j].kind == e.kind && r.entries[j].year == e.year {
					return nil, fmt.Errorf("snapshot: duplicate %s section for year %d", e.kind, e.year)
				}
			}
		case sectTraces:
			key, err := r.traceLabel(i)
			if err != nil {
				return nil, err
			}
			if _, dup := r.traceIdx[key]; dup {
				return nil, fmt.Errorf("snapshot: duplicate traces section for %+v", key)
			}
			r.traceIdx[key] = i
		default:
			m := byYear[e.year]
			if m == nil {
				m = make(map[sectKind]int)
				byYear[e.year] = m
			}
			if _, dup := m[e.kind]; dup {
				return nil, fmt.Errorf("snapshot: duplicate %s section for year %d", e.kind, e.year)
			}
			m[e.kind] = i
		}
	}
	for year, sects := range byYear {
		if err := r.wireYear(year, sects); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func (r *Reader) payload(i int) []byte {
	e := r.entries[i]
	return r.raw[e.off : e.off+e.length]
}

// checkedPayload returns section i's bytes after verifying its CRC — used
// for cold sections, where decode cost dwarfs the checksum.
func (r *Reader) checkedPayload(i int) ([]byte, error) {
	e := r.entries[i]
	p := r.payload(i)
	if got := crc32.ChecksumIEEE(p); got != e.crc {
		return nil, fmt.Errorf("snapshot: section %d (%s) checksum mismatch: computed %#x, stored %#x",
			i, e.kind, got, e.crc)
	}
	return p, nil
}

// traceLabel peeks a traces section's identifying front fields without
// decoding (or CRC-checking) the corpus.
func (r *Reader) traceLabel(i int) (TraceKey, error) {
	d := &dec{buf: r.payload(i)}
	key := TraceKey{Year: int(d.u32())}
	key.Cloud = d.str()
	key.VMs = int(d.u32())
	if d.err != nil {
		return TraceKey{}, fmt.Errorf("snapshot: section %d (traces): %w", i, d.err)
	}
	if key.Year != r.entries[i].year {
		return TraceKey{}, fmt.Errorf("snapshot: traces section %d year %d disagrees with table year %d",
			i, key.Year, r.entries[i].year)
	}
	return key, nil
}

// need returns the payload of a required section for a year.
func need(r *Reader, year int, sects map[sectKind]int, k sectKind) ([]byte, error) {
	i, ok := sects[k]
	if !ok {
		return nil, fmt.Errorf("snapshot: year %d is missing its %s section", year, k)
	}
	return r.payload(i), nil
}

// hotSlice casts a required section's payload to its array type.
func hotSlice[T any](r *Reader, year int, sects map[sectKind]int, k sectKind) ([]T, error) {
	p, err := need(r, year, sects, k)
	if err != nil {
		return nil, err
	}
	s, err := castSlice[T](p)
	if err != nil {
		return nil, fmt.Errorf("snapshot: year %d section %s: %w", year, k, err)
	}
	return s, nil
}

// checkOffsets validates a CSR offset array: monotonically nondecreasing
// within [0, arenaLen]. This is what keeps a corrupt un-Verified snapshot
// from indexing out of bounds at query time.
func checkOffsets(year int, k sectKind, offs []int32, arenaLen int) error {
	prev := int32(0)
	for _, o := range offs {
		if o < prev || int(o) > arenaLen {
			return fmt.Errorf("snapshot: year %d section %s: offsets not monotone within [0,%d]", year, k, arenaLen)
		}
		prev = o
	}
	return nil
}

func (r *Reader) wireYear(year int, sects map[sectKind]int) error {
	wi, ok := sects[sectWorld]
	if !ok {
		return fmt.Errorf("snapshot: year %d has topology sections but no world section", year)
	}
	cold, err := r.checkedPayload(wi)
	if err != nil {
		return err
	}
	d := &dec{buf: cold}
	if y := int(d.u32()); y != year {
		return fmt.Errorf("snapshot: world section year %d disagrees with table year %d", y, year)
	}
	in := &topogen.Internet{}
	decodeSpec(d, &in.Spec)
	in.Tier1 = decodeASSet(d)
	in.Tier2 = decodeASSet(d)
	in.Clouds = decodeNamedASNs(d)
	in.Hypergiants = decodeNamedASNs(d)
	if d.err != nil {
		return fmt.Errorf("snapshot: year %d world section: %w", year, d.err)
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("snapshot: year %d world section: %d trailing bytes", year, len(d.buf)-d.off)
	}

	nodes, err := hotSlice[astopo.ASN](r, year, sects, sectNodes)
	if err != nil {
		return err
	}
	n := len(nodes)
	rowOffs, err := hotSlice[int32](r, year, sects, sectRowOffs)
	if err != nil {
		return err
	}
	if len(rowOffs) != 3*(n+1) {
		return fmt.Errorf("snapshot: year %d row offsets hold %d entries, want %d", year, len(rowOffs), 3*(n+1))
	}
	arena, err := hotSlice[int32](r, year, sects, sectArena)
	if err != nil {
		return err
	}
	ends, err := hotSlice[astopo.ASN](r, year, sects, sectLinkEnds)
	if err != nil {
		return err
	}
	if len(ends)%2 != 0 {
		return fmt.Errorf("snapshot: year %d link ends hold %d entries, want an even count", year, len(ends))
	}
	m := len(ends) / 2
	rels, err := hotSlice[astopo.Rel](r, year, sects, sectLinkRel)
	if err != nil {
		return err
	}
	f := astopo.Frozen{
		Nodes:   nodes,
		ProvOff: rowOffs[: n+1 : n+1],
		CustOff: rowOffs[n+1 : 2*(n+1) : 2*(n+1)],
		PeerOff: rowOffs[2*(n+1):],
		Arena:   arena,
		LinkA:   ends[:m:m],
		LinkB:   ends[m:],
		LinkRel: rels,
	}
	for _, offs := range [][]int32{f.ProvOff, f.CustOff, f.PeerOff} {
		if err := checkOffsets(year, sectRowOffs, offs, len(arena)); err != nil {
			return err
		}
	}
	g, err := astopo.FromFrozen(f)
	if err != nil {
		return fmt.Errorf("snapshot: year %d: %w", year, err)
	}
	in.Graph = g

	meta := &topogen.ASMeta{}
	if meta.Class, err = hotSlice[topogen.ASClass](r, year, sects, sectClass); err != nil {
		return err
	}
	if meta.Home, err = hotSlice[geo.CityID](r, year, sects, sectHome); err != nil {
		return err
	}
	if meta.PoPOff, err = hotSlice[int32](r, year, sects, sectPoPOff); err != nil {
		return err
	}
	if meta.PoPArena, err = hotSlice[geo.CityID](r, year, sects, sectPoPArena); err != nil {
		return err
	}
	if meta.NameOff, err = hotSlice[int32](r, year, sects, sectNameOff); err != nil {
		return err
	}
	if meta.NameBlob, err = need(r, year, sects, sectNameBlob); err != nil {
		return err
	}
	if len(meta.Class) != n || len(meta.Home) != n || len(meta.PoPOff) != n+1 || len(meta.NameOff) != n+1 {
		return fmt.Errorf("snapshot: year %d metadata columns are not parallel to its %d nodes", year, n)
	}
	if err := checkOffsets(year, sectPoPOff, meta.PoPOff, len(meta.PoPArena)); err != nil {
		return err
	}
	if err := checkOffsets(year, sectNameOff, meta.NameOff, len(meta.NameBlob)); err != nil {
		return err
	}
	in.Meta = meta

	tbl, err := hotSlice[int32](r, year, sects, sectIXPTable)
	if err != nil {
		return err
	}
	if len(tbl)%2 != 1 {
		return fmt.Errorf("snapshot: year %d IXP table holds %d entries, want odd", year, len(tbl))
	}
	members, err := hotSlice[astopo.ASN](r, year, sects, sectIXPMembers)
	if err != nil {
		return err
	}
	k := (len(tbl) - 1) / 2
	cities, offs := tbl[:k], tbl[k:]
	if err := checkOffsets(year, sectIXPTable, offs, len(members)); err != nil {
		return err
	}
	in.IXPs = make([]topogen.IXP, k)
	for i := range in.IXPs {
		in.IXPs[i] = topogen.IXP{
			City:    geo.CityID(cities[i]),
			Members: members[offs[i]:offs[i+1]:offs[i+1]],
		}
	}
	r.internets[year] = in

	ti, hasTypes := sects[sectPopTypes]
	ui, hasUsers := sects[sectPopUsers]
	if hasTypes != hasUsers {
		return fmt.Errorf("snapshot: year %d has only one of its two population sections", year)
	}
	if hasTypes {
		types, err := castSlice[population.ASType](r.payload(ti))
		if err != nil {
			return fmt.Errorf("snapshot: year %d section %s: %w", year, sectPopTypes, err)
		}
		up := r.payload(ui)
		if len(up) < 8 {
			return fmt.Errorf("snapshot: year %d users section too short for its total", year)
		}
		total := math.Float64frombits(binary.LittleEndian.Uint64(up))
		users, err := castSlice[float64](up[8:])
		if err != nil {
			return fmt.Errorf("snapshot: year %d section %s: %w", year, sectPopUsers, err)
		}
		if len(types) != n || len(users) != n {
			return fmt.Errorf("snapshot: year %d population columns are not parallel to its %d nodes", year, n)
		}
		r.pops[year] = population.FromDense(nodes, types, users, total)
	}
	return nil
}

// Scale returns the generation scale recorded in the snapshot.
func (r *Reader) Scale() float64 { return r.scale }

// Mapped reports whether the snapshot is served from an OS file mapping.
func (r *Reader) Mapped() bool { return r.m != nil && r.m.Mapped() }

// Years lists the years with a topology, ascending.
func (r *Reader) Years() []int {
	years := make([]int, 0, len(r.internets))
	for y := range r.internets {
		years = append(years, y)
	}
	sort.Ints(years)
	return years
}

// Internet returns the year's topology, or nil. The graph and metadata
// borrow the snapshot's memory.
func (r *Reader) Internet(year int) *topogen.Internet { return r.internets[year] }

// Population returns the year's population model, or nil. The model
// borrows the snapshot's memory.
func (r *Reader) Population(year int) *population.Model { return r.pops[year] }

func (r *Reader) findCold(kind sectKind, year int) (int, bool) {
	for i, e := range r.entries {
		if e.kind == kind && e.year == year {
			return i, true
		}
	}
	return 0, false
}

// HasPlan reports whether the snapshot carries an address plan for the
// year, without decoding it.
func (r *Reader) HasPlan(year int) bool {
	_, ok := r.findCold(sectPlan, year)
	return ok
}

// HasRDNS reports whether the snapshot carries an rDNS corpus for the
// year, without decoding it.
func (r *Reader) HasRDNS(year int) bool {
	_, ok := r.findCold(sectRDNS, year)
	return ok
}

// Plan decodes (once) and returns the year's address plan, bound to the
// year's topology. It errors if the snapshot has no such plan.
func (r *Reader) Plan(year int) (*netdb.Plan, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if p, ok := r.plans[year]; ok {
		return p, nil
	}
	i, ok := r.findCold(sectPlan, year)
	if !ok {
		return nil, fmt.Errorf("snapshot: no plan section for year %d", year)
	}
	in := r.internets[year]
	if in == nil {
		return nil, fmt.Errorf("snapshot: plan for year %d has no internet section", year)
	}
	p, err := r.checkedPayload(i)
	if err != nil {
		return nil, err
	}
	d := &dec{buf: p}
	py, plan := decodePlan(d)
	if err := coldDecodeErr(d, i, sectPlan); err != nil {
		return nil, err
	}
	if py != year {
		return nil, fmt.Errorf("snapshot: plan section %d year %d disagrees with table year %d", i, py, year)
	}
	plan.Bind(in)
	r.plans[year] = plan
	return plan, nil
}

// RDNS decodes (once) and returns the year's rDNS corpus. It errors if
// the snapshot has no such corpus.
func (r *Reader) RDNS(year int) (*rdns.Corpus, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.rdnsC[year]; ok {
		return c, nil
	}
	i, ok := r.findCold(sectRDNS, year)
	if !ok {
		return nil, fmt.Errorf("snapshot: no rdns section for year %d", year)
	}
	p, err := r.checkedPayload(i)
	if err != nil {
		return nil, err
	}
	d := &dec{buf: p}
	cy, c := decodeRDNS(d)
	if err := coldDecodeErr(d, i, sectRDNS); err != nil {
		return nil, err
	}
	if cy != year {
		return nil, fmt.Errorf("snapshot: rdns section %d year %d disagrees with table year %d", i, cy, year)
	}
	r.rdnsC[year] = c
	return c, nil
}

// TraceKeys lists the traceroute campaigns in the snapshot, sorted.
func (r *Reader) TraceKeys() []TraceKey {
	keys := make([]TraceKey, 0, len(r.traceIdx))
	for k := range r.traceIdx {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Year != b.Year {
			return a.Year < b.Year
		}
		if a.Cloud != b.Cloud {
			return a.Cloud < b.Cloud
		}
		return a.VMs < b.VMs
	})
	return keys
}

// Traces decodes (once) and returns one campaign's traceroutes. It errors
// if the snapshot has no such campaign.
func (r *Reader) Traces(key TraceKey) ([][]tracesim.Traceroute, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tr, ok := r.traces[key]; ok {
		return tr, nil
	}
	i, ok := r.traceIdx[key]
	if !ok {
		return nil, fmt.Errorf("snapshot: no traces section for %d/%s/%d VMs", key.Year, key.Cloud, key.VMs)
	}
	p, err := r.checkedPayload(i)
	if err != nil {
		return nil, err
	}
	d := &dec{buf: p}
	gotKey, tr := decodeTraces(d)
	if err := coldDecodeErr(d, i, sectTraces); err != nil {
		return nil, err
	}
	if gotKey != key {
		return nil, fmt.Errorf("snapshot: traces section %d decoded as %+v, want %+v", i, gotKey, key)
	}
	r.traces[key] = tr
	return tr, nil
}

func coldDecodeErr(d *dec, i int, k sectKind) error {
	if d.err != nil {
		return fmt.Errorf("snapshot: section %d (%s): %w", i, k, d.err)
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("snapshot: section %d (%s): %d trailing bytes", i, k, len(d.buf)-d.off)
	}
	return nil
}

// Verify checksums every section, including the hot arrays the zero-copy
// load path deliberately skips. It reads the whole file (faulting every
// page in when mapped).
func (r *Reader) Verify() error {
	for i := range r.entries {
		if _, err := r.checkedPayload(i); err != nil {
			return err
		}
	}
	return nil
}

// World materializes the full eager World: every plan, rDNS corpus, and
// trace campaign decoded. The world's topologies and populations still
// borrow the Reader's memory — when the Reader came from Open, do not
// Close it while the world is in use.
func (r *Reader) World() (*World, error) {
	world := &World{
		Scale:     r.scale,
		Internets: r.internets,
		Pops:      r.pops,
		Plans:     make(map[int]*netdb.Plan),
		RDNS:      make(map[int]*rdns.Corpus),
		Traces:    make(map[TraceKey][][]tracesim.Traceroute),
	}
	for _, e := range r.entries {
		switch e.kind {
		case sectPlan:
			p, err := r.Plan(e.year)
			if err != nil {
				return nil, err
			}
			world.Plans[e.year] = p
		case sectRDNS:
			c, err := r.RDNS(e.year)
			if err != nil {
				return nil, err
			}
			world.RDNS[e.year] = c
		}
	}
	for key := range r.traceIdx {
		tr, err := r.Traces(key)
		if err != nil {
			return nil, err
		}
		world.Traces[key] = tr
	}
	return world, nil
}

// Close releases the underlying mapping. Every structure handed out by
// the Reader — graphs, metadata, populations, plans decoded from it —
// borrows that memory and must not be used afterwards.
func (r *Reader) Close() error {
	if r.m == nil {
		return nil
	}
	return r.m.Close()
}

// readInfoV2 labels the sections of a v2 stream whose fixed header has
// already been consumed. It streams forward without validating CRCs.
func readInfoV2(r io.Reader, info *Info, nsect int) (*Info, error) {
	table := make([]byte, v2EntryLen*nsect+4)
	if _, err := io.ReadFull(r, table); err != nil {
		return nil, fmt.Errorf("snapshot: reading section table: %w", err)
	}
	entries := make([]v2entry, nsect)
	for i := range entries {
		ent := table[i*v2EntryLen:]
		entries[i] = v2entry{
			kind:   sectKind(binary.LittleEndian.Uint32(ent[0:])),
			year:   int(binary.LittleEndian.Uint32(ent[4:])),
			off:    binary.LittleEndian.Uint64(ent[8:]),
			length: binary.LittleEndian.Uint64(ent[16:]),
		}
		if !knownSectKind(entries[i].kind) {
			return nil, fmt.Errorf("snapshot: unknown section kind %d", uint32(entries[i].kind))
		}
		info.Sections = append(info.Sections, SectionInfo{
			Label:  entries[i].kind.String(),
			Length: entries[i].length,
			Year:   entries[i].year,
		})
	}
	// Traces labels live at the front of their payloads; stream forward in
	// offset order peeking just those.
	order := make([]int, nsect)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return entries[order[a]].off < entries[order[b]].off })
	pos := uint64(v2HeaderLen + v2EntryLen*nsect + 4)
	for _, i := range order {
		e := entries[i]
		if e.off < pos {
			return nil, fmt.Errorf("snapshot: section %d (%s) overlaps its predecessor", i, e.kind)
		}
		if _, err := io.CopyN(io.Discard, r, int64(e.off-pos)); err != nil {
			return nil, fmt.Errorf("snapshot: skipping to section %d: %w", i, err)
		}
		pos = e.off
		if e.kind != sectTraces && e.kind != sectDelta {
			if _, err := io.CopyN(io.Discard, r, int64(e.length)); err != nil {
				return nil, fmt.Errorf("snapshot: skipping section %d: %w", i, err)
			}
			pos += e.length
			continue
		}
		front := make([]byte, min(e.length, 4096))
		if _, err := io.ReadFull(r, front); err != nil {
			return nil, fmt.Errorf("snapshot: section %d label: %w", i, err)
		}
		pos += uint64(len(front))
		d := &dec{buf: front}
		si := &info.Sections[i]
		if e.kind == sectDelta {
			di := &DeltaInfo{FromYear: int(d.u32()), ToYear: int(d.u32())}
			di.BaseHash = d.str()
			di.ResultHash = d.str()
			if d.err != nil {
				return nil, fmt.Errorf("snapshot: section %d label: %w", i, d.err)
			}
			si.Year = di.ToYear
			info.Delta = di
		} else {
			si.Year = int(d.u32())
			si.Cloud = d.str()
			si.VMs = int(d.u32())
			if d.err != nil {
				return nil, fmt.Errorf("snapshot: section %d label: %w", i, d.err)
			}
		}
		if _, err := io.CopyN(io.Discard, r, int64(e.length-uint64(len(front)))); err != nil {
			return nil, fmt.Errorf("snapshot: skipping section %d: %w", i, err)
		}
		pos = e.off + e.length
	}
	return info, nil
}
