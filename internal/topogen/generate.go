package topogen

import (
	"fmt"
	"math/rand"
	"sort"

	"flatnet/internal/astopo"
	"flatnet/internal/geo"
)

// synthBase is the first ASN used for unnamed, generated ASes. All named
// profiles use real ASNs below this value.
const synthBase astopo.ASN = 200000

// Generate builds a deterministic Internet from spec. Two calls with equal
// specs produce identical topologies.
func Generate(spec Spec) (*Internet, error) {
	if err := validate(spec); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	in := &Internet{
		Spec:        spec,
		Graph:       astopo.NewGraph(spec.NumASes, spec.NumASes*6),
		Tier1:       make(astopo.ASSet),
		Tier2:       make(astopo.ASSet),
		Clouds:      make(map[string]astopo.ASN),
		Hypergiants: make(map[string]astopo.ASN),
	}
	b := &builder{
		spec: spec, rng: rng, in: in,
		class: make(map[astopo.ASN]ASClass, spec.NumASes),
		name:  make(map[astopo.ASN]string),
		home:  make(map[astopo.ASN]geo.CityID, spec.NumASes),
		pops:  make(map[astopo.ASN][]geo.CityID),
	}
	b.placeCities()
	b.createNamed()
	b.createSynthetic()
	b.wireTier1Clique()
	b.wireNamedProviders()
	b.wireTransitProviders()
	b.wireEdgeProviders()
	b.buildIXPs()
	b.wireNamedPeering()
	in.Graph.Freeze()
	in.Meta = NewASMeta(in.Graph, b.class, b.name, b.home, b.pops)
	return in, nil
}

func validate(spec Spec) error {
	named := len(spec.Tier1) + len(spec.Tier2) + len(spec.Clouds) + len(spec.Hypergiants)
	if spec.NumASes < named+spec.NumTransit+10 {
		return fmt.Errorf("topogen: NumASes=%d too small for %d named + %d transit ASes",
			spec.NumASes, named, spec.NumTransit)
	}
	if spec.FracAccess+spec.FracContent > 1 {
		return fmt.Errorf("topogen: FracAccess+FracContent = %v > 1", spec.FracAccess+spec.FracContent)
	}
	if spec.NumIXPs <= 0 {
		return fmt.Errorf("topogen: NumIXPs must be positive")
	}
	seen := make(map[astopo.ASN]string)
	for _, group := range [][]Profile{spec.Tier1, spec.Tier2, spec.Clouds, spec.Hypergiants} {
		for _, p := range group {
			if p.ASN >= synthBase {
				return fmt.Errorf("topogen: profile %q ASN %d collides with synthetic range", p.Name, p.ASN)
			}
			if prev, dup := seen[p.ASN]; dup {
				return fmt.Errorf("topogen: ASN %d used by both %q and %q", p.ASN, prev, p.Name)
			}
			seen[p.ASN] = p.Name
		}
	}
	return nil
}

type builder struct {
	spec Spec
	rng  *rand.Rand
	in   *Internet

	// per-AS annotations, map-shaped while the graph is still growing;
	// converted to the dense Internet.Meta table after Freeze.
	class map[astopo.ASN]ASClass
	name  map[astopo.ASN]string
	home  map[astopo.ASN]geo.CityID
	pops  map[astopo.ASN][]geo.CityID

	// city machinery
	citiesByContinent map[geo.Continent][]geo.CityID
	cityCum           map[geo.Continent][]float64 // cumulative PopM for weighted draws
	allCityCum        []float64

	// AS populations by class
	transits   []astopo.ASN
	access     []astopo.ASN
	content    []astopo.ASN
	enterprise []astopo.ASN

	// preferential-attachment urns
	transitUrn map[geo.Continent][]astopo.ASN
	anyTransit []astopo.ASN
	tier2Urn   []astopo.ASN
	tier1Urn   []astopo.ASN

	custCount map[astopo.ASN]int
}

func (b *builder) placeCities() {
	b.citiesByContinent = make(map[geo.Continent][]geo.CityID)
	b.cityCum = make(map[geo.Continent][]float64)
	cities := geo.Cities()
	for i := range cities {
		c := cities[i].Continent
		b.citiesByContinent[c] = append(b.citiesByContinent[c], geo.CityID(i))
	}
	for cont, ids := range b.citiesByContinent {
		cum := make([]float64, len(ids))
		var s float64
		for i, id := range ids {
			s += cities[id].PopM
			cum[i] = s
		}
		b.cityCum[cont] = cum
	}
	b.allCityCum = make([]float64, len(cities))
	var s float64
	for i := range cities {
		s += cities[i].PopM
		b.allCityCum[i] = s
	}
}

// randCity draws a city weighted by metro population, optionally restricted
// to a continent.
func (b *builder) randCity(cont geo.Continent, anyContinent bool) geo.CityID {
	if anyContinent {
		return geo.CityID(weightedIndex(b.rng, b.allCityCum))
	}
	ids := b.citiesByContinent[cont]
	return ids[weightedIndex(b.rng, b.cityCum[cont])]
}

// randContinent draws a continent weighted by its gazetteer population.
func (b *builder) randContinent() geo.Continent {
	conts := geo.Continents()
	pops := geo.ContinentPopulationM()
	cum := make([]float64, len(conts))
	var s float64
	for i, c := range conts {
		s += pops[c]
		cum[i] = s
	}
	return conts[weightedIndex(b.rng, cum)]
}

func weightedIndex(rng *rand.Rand, cum []float64) int {
	x := rng.Float64() * cum[len(cum)-1]
	i := sort.SearchFloat64s(cum, x)
	if i >= len(cum) {
		i = len(cum) - 1
	}
	return i
}

func (b *builder) createNamed() {
	in := b.in
	register := func(p Profile, class ASClass) {
		b.class[p.ASN] = class
		b.name[p.ASN] = p.Name
		b.pops[p.ASN] = b.pickPoPs(p)
		if len(b.pops[p.ASN]) > 0 {
			b.home[p.ASN] = b.pops[p.ASN][0]
		}
	}
	for _, p := range b.spec.Tier1 {
		register(p, ClassTier1)
		in.Tier1.Add(p.ASN)
	}
	for _, p := range b.spec.Tier2 {
		register(p, ClassTier2)
		in.Tier2.Add(p.ASN)
	}
	for _, p := range b.spec.Clouds {
		register(p, ClassCloud)
		in.Clouds[p.Name] = p.ASN
	}
	for _, p := range b.spec.Hypergiants {
		register(p, p.Class)
		in.Hypergiants[p.Name] = p.ASN
		switch p.Class {
		case ClassContent:
			b.content = append(b.content, p.ASN)
		case ClassTransit:
			b.transits = append(b.transits, p.ASN)
		}
	}
}

// pickPoPs selects PoP cities for a named network: population-weighted,
// restricted to North America / Europe / Asia unless the profile is Global.
// Only cloud providers deploy in Shanghai and Beijing (the Fig. 11
// observation that those are the two cloud-only locations).
func (b *builder) pickPoPs(p Profile) []geo.CityID {
	if p.PoPCount <= 0 {
		return nil
	}
	core := []geo.Continent{geo.NorthAmerica, geo.Europe, geo.Asia}
	var pops []geo.CityID
	seen := make(map[geo.CityID]bool)
	shanghai := geo.CityByIATA("pvg")
	beijing := geo.CityByIATA("pek")
	for tries := 0; len(pops) < p.PoPCount && tries < p.PoPCount*30; tries++ {
		var id geo.CityID
		if p.Global && b.rng.Float64() < 0.30 {
			id = b.randCity(0, true)
		} else {
			id = b.randCity(core[b.rng.Intn(len(core))], false)
		}
		if (id == shanghai || id == beijing) && p.Class != ClassCloud {
			continue
		}
		if !seen[id] {
			seen[id] = true
			pops = append(pops, id)
		}
	}
	return pops
}

func (b *builder) createSynthetic() {
	named := len(b.class)
	nEdge := b.spec.NumASes - named - b.spec.NumTransit
	nAccess := int(float64(nEdge) * b.spec.FracAccess)
	nContent := int(float64(nEdge) * b.spec.FracContent)
	nEnterprise := nEdge - nAccess - nContent

	b.transitUrn = make(map[geo.Continent][]astopo.ASN)
	next := synthBase
	add := func(class ASClass) astopo.ASN {
		a := next
		next++
		b.class[a] = class
		cont := b.randContinent()
		city := b.randCity(cont, false)
		b.home[a] = city
		return a
	}
	for i := 0; i < b.spec.NumTransit; i++ {
		a := add(ClassTransit)
		b.transits = append(b.transits, a)
	}
	for i := 0; i < nAccess; i++ {
		b.access = append(b.access, add(ClassAccess))
	}
	for i := 0; i < nContent; i++ {
		b.content = append(b.content, add(ClassContent))
	}
	for i := 0; i < nEnterprise; i++ {
		b.enterprise = append(b.enterprise, add(ClassEnterprise))
	}

	// Seed the attachment urns.
	b.custCount = make(map[astopo.ASN]int)
	for _, a := range b.transits {
		cont := geo.Cities()[b.home[a]].Continent
		b.transitUrn[cont] = append(b.transitUrn[cont], a)
		b.anyTransit = append(b.anyTransit, a)
	}
	for _, p := range b.spec.Tier2 {
		b.tier2Urn = append(b.tier2Urn, p.ASN)
	}
	for _, p := range b.spec.Tier1 {
		b.tier1Urn = append(b.tier1Urn, p.ASN)
	}
}

func (b *builder) wireTier1Clique() {
	t1 := b.spec.Tier1
	for i := range t1 {
		for j := i + 1; j < len(t1); j++ {
			b.in.Graph.MustAddLink(t1[i].ASN, t1[j].ASN, astopo.P2P)
		}
	}
}

// pickProviders selects a profile's transit providers: Tier1Provs members
// of the clique first (honoring PreferredProviders), then Tier-2s and large
// transits for the remainder.
func (b *builder) pickProviders(p Profile) []astopo.ASN {
	var provs []astopo.ASN
	used := map[astopo.ASN]bool{p.ASN: true}
	take := func(a astopo.ASN) {
		if !used[a] {
			used[a] = true
			provs = append(provs, a)
		}
	}
	for _, a := range p.PreferredProviders {
		take(a)
	}
	t1 := b.rng.Perm(len(b.spec.Tier1))
	for _, i := range t1 {
		nT1 := 0
		for _, a := range provs {
			if b.in.Tier1.Has(a) {
				nT1++
			}
		}
		if nT1 >= p.Tier1Provs {
			break
		}
		take(b.spec.Tier1[i].ASN)
	}
	pool := append(append([]astopo.ASN(nil), b.tier2Urn...), b.anyTransit...)
	for len(provs) < p.ProviderCount && len(pool) > 0 {
		i := b.rng.Intn(len(pool))
		take(pool[i])
		pool = append(pool[:i], pool[i+1:]...)
	}
	if len(provs) > p.ProviderCount && p.ProviderCount > 0 {
		provs = provs[:p.ProviderCount]
	}
	return provs
}

func (b *builder) wireNamedProviders() {
	groups := [][]Profile{b.spec.Tier2, b.spec.Clouds, b.spec.Hypergiants}
	for _, group := range groups {
		for _, p := range group {
			for _, prov := range b.pickProviders(p) {
				if _, exists := b.in.Graph.HasLink(prov, p.ASN); !exists {
					b.in.Graph.MustAddLink(prov, p.ASN, astopo.P2C)
					b.custCount[prov]++
				}
			}
		}
	}
}

// wireTransitProviders gives each regional transit 1–3 providers drawn from
// the Tier-1s and Tier-2s (Tier-2-heavy, mirroring the hierarchy).
func (b *builder) wireTransitProviders() {
	for _, a := range b.transits {
		if _, named := b.name[a]; named {
			continue // hypergiant transit profiles picked their own
		}
		n := 1 + b.rng.Intn(3)
		used := map[astopo.ASN]bool{a: true}
		for len(used)-1 < n {
			var prov astopo.ASN
			if b.rng.Float64() < 0.35 {
				prov = b.tier1Urn[b.rng.Intn(len(b.tier1Urn))]
			} else {
				prov = b.tier2Urn[b.rng.Intn(len(b.tier2Urn))]
			}
			if used[prov] {
				continue
			}
			used[prov] = true
			if _, exists := b.in.Graph.HasLink(prov, a); exists {
				continue // already related (e.g. a named profile chose this transit as its provider)
			}
			b.in.Graph.MustAddLink(prov, a, astopo.P2C)
			b.custCount[prov]++
			// Preferential attachment: providers that win customers
			// become likelier to win more.
			if b.in.Tier1.Has(prov) {
				b.tier1Urn = append(b.tier1Urn, prov)
			} else {
				b.tier2Urn = append(b.tier2Urn, prov)
			}
		}
	}
}

// wireEdgeProviders attaches access, content, and enterprise ASes to the
// hierarchy: mostly same-continent regional transits (with preferential
// attachment), sometimes Tier-2s or Tier-1s directly.
func (b *builder) wireEdgeProviders() {
	in := b.in
	attach := func(a astopo.ASN, nProv int) {
		cont := geo.Cities()[b.home[a]].Continent
		used := map[astopo.ASN]bool{a: true}
		for len(used)-1 < nProv {
			var prov astopo.ASN
			switch r := b.rng.Float64(); {
			case r < 0.72 && len(b.transitUrn[cont]) > 0:
				urn := b.transitUrn[cont]
				prov = urn[b.rng.Intn(len(urn))]
			case r < 0.86:
				prov = b.anyTransit[b.rng.Intn(len(b.anyTransit))]
			case r < 0.95:
				prov = b.tier2Urn[b.rng.Intn(len(b.tier2Urn))]
			default:
				prov = b.tier1Urn[b.rng.Intn(len(b.tier1Urn))]
			}
			if used[prov] {
				continue
			}
			used[prov] = true
			if _, exists := in.Graph.HasLink(prov, a); exists {
				continue
			}
			in.Graph.MustAddLink(prov, a, astopo.P2C)
			b.custCount[prov]++
			if b.class[prov] == ClassTransit {
				pc := geo.Cities()[b.home[prov]].Continent
				b.transitUrn[pc] = append(b.transitUrn[pc], prov)
				b.anyTransit = append(b.anyTransit, prov)
			}
		}
	}
	nProviders := func() int {
		switch r := b.rng.Float64(); {
		case r < 0.45:
			return 1
		case r < 0.85:
			return 2
		default:
			return 3
		}
	}
	for _, a := range b.access {
		attach(a, nProviders())
	}
	for _, a := range b.content {
		attach(a, 1+nProviders()) // content multihomes more
	}
	for _, a := range b.enterprise {
		attach(a, nProviders())
	}
}
