package topogen

import (
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
	"flatnet/internal/geo"
)

func gen2020(t testing.TB, scale float64) *Internet {
	t.Helper()
	in, err := Generate(Internet2020(scale))
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestGenerateDeterministic(t *testing.T) {
	a := gen2020(t, 0.0285)
	b := gen2020(t, 0.0285)
	la, lb := a.Graph.Links(), b.Graph.Links()
	if len(la) != len(lb) {
		t.Fatalf("link counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			t.Fatalf("link %d differs: %v vs %v", i, la[i], lb[i])
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	in := gen2020(t, 0.04275)
	g := in.Graph

	// Every Tier-1 is provider-free and the clique is fully meshed.
	for a := range in.Tier1 {
		if provs := g.Providers(a); len(provs) != 0 {
			t.Errorf("Tier-1 AS%d has providers %v", a, provs)
		}
		for b := range in.Tier1 {
			if a >= b {
				continue
			}
			if rel, ok := g.HasLink(a, b); !ok || rel != astopo.P2P {
				t.Errorf("clique members AS%d-AS%d: %v,%v", a, b, rel, ok)
			}
		}
	}

	// Every non-Tier-1, non-provider-free AS has at least one provider
	// (upward connectivity to the clique).
	providerFree := astopo.NewASSet(6939, 3491, 6830) // HE, PCCW, Liberty Global
	for _, a := range g.ASes() {
		if in.Tier1.Has(a) || providerFree.Has(a) {
			continue
		}
		if len(g.Providers(a)) == 0 {
			t.Errorf("AS%d (%s) has no providers", a, in.ClassOf(a))
		}
	}

	// Google's transit providers are the documented three.
	provs := g.Providers(15169)
	if len(provs) != 3 {
		t.Fatalf("Google providers = %v, want 3", provs)
	}
	want := astopo.NewASSet(6453, 3257, 22356)
	for _, p := range provs {
		if !want.Has(p) {
			t.Errorf("unexpected Google provider AS%d", p)
		}
	}

	// Every AS has a class and a home city within range.
	cities := len(geo.Cities())
	for i, a := range g.ASes() {
		if in.ClassAt(i) > ClassCloud {
			t.Fatalf("AS%d has class %d out of range", a, int(in.ClassAt(i)))
		}
		if c := int(in.HomeCityAt(i)); c < 0 || c >= cities {
			t.Fatalf("AS%d has home city %d out of range", a, c)
		}
	}
}

func TestGenerateSizes(t *testing.T) {
	in := gen2020(t, 0.04275)
	want := in.Spec.NumASes
	got := in.Graph.NumASes()
	// A handful of enterprises may end up linkless if attachment fails;
	// allow 1% slack.
	if got < want*99/100 || got > want {
		t.Errorf("NumASes = %d, want ~%d", got, want)
	}
	// Link density should be in the plausible Internet range (the real
	// 2020 graph has ~7 links per AS).
	density := float64(in.Graph.NumLinks()) / float64(got)
	if density < 3 || density > 20 {
		t.Errorf("link density = %.1f links/AS, want 3-20", density)
	}
}

func TestGenerateValidation(t *testing.T) {
	spec := Internet2020(0.0285)
	spec.NumASes = 10
	if _, err := Generate(spec); err == nil {
		t.Error("tiny NumASes accepted")
	}
	spec = Internet2020(0.0285)
	spec.FracAccess, spec.FracContent = 0.9, 0.9
	if _, err := Generate(spec); err == nil {
		t.Error("fractions > 1 accepted")
	}
	spec = Internet2020(0.0285)
	spec.NumIXPs = 0
	if _, err := Generate(spec); err == nil {
		t.Error("zero IXPs accepted")
	}
	spec = Internet2020(0.0285)
	spec.Tier1[0].ASN = synthBase + 5
	if _, err := Generate(spec); err == nil {
		t.Error("synthetic-range profile ASN accepted")
	}
	spec = Internet2020(0.0285)
	spec.Tier1[0].ASN = spec.Tier2[0].ASN
	if _, err := Generate(spec); err == nil {
		t.Error("duplicate profile ASN accepted")
	}
}

func TestMasks(t *testing.T) {
	in := gen2020(t, 0.0285)
	g := in.Graph
	google := in.Clouds["Google"]
	pf := in.ProviderFreeMask(google)
	for _, p := range g.Providers(google) {
		i, _ := g.Index(p)
		if !pf[i] {
			t.Errorf("provider AS%d not masked", p)
		}
	}
	hf := in.HierarchyFreeMask(google)
	nMasked := 0
	for _, m := range hf {
		if m {
			nMasked++
		}
	}
	wantMin := len(in.Tier1) + len(in.Tier2) // providers overlap T1/T2 sets sometimes
	if nMasked < wantMin {
		t.Errorf("hierarchy-free mask covers %d ASes, want >= %d", nMasked, wantMin)
	}
	// An origin inside the exclusion set must not be masked out of its
	// own propagation.
	he := astopo.ASN(6939)
	m := in.HierarchyFreeMask(he)
	i, _ := g.Index(he)
	if m[i] {
		t.Error("origin masked out of its own hierarchy-free mask")
	}
}

// TestGenerateShape verifies the headline qualitative property the whole
// reproduction rests on: the clouds' hierarchy-free reachability is high
// (>60% of ASes) and ordered Google >= Microsoft >= IBM >= Amazon, and a
// hierarchy-reliant Tier-1 (Sprint) collapses without the Tier-2s.
func TestGenerateShape(t *testing.T) {
	in := gen2020(t, 0.04987)
	sim := bgpsim.New(in.Graph)
	total := in.Graph.NumASes() - 1
	hfr := func(o astopo.ASN) float64 {
		n, err := sim.ReachabilityCount(bgpsim.Config{Origin: o, Exclude: in.HierarchyFreeMask(o)})
		if err != nil {
			t.Fatal(err)
		}
		return float64(n) / float64(total)
	}
	google := hfr(15169)
	microsoft := hfr(8075)
	ibm := hfr(36351)
	amazon := hfr(16509)
	sprint := hfr(1239)
	level3 := hfr(3356)
	t.Logf("hierarchy-free: google=%.3f microsoft=%.3f ibm=%.3f amazon=%.3f level3=%.3f sprint=%.3f",
		google, microsoft, ibm, amazon, level3, sprint)
	if google < 0.60 {
		t.Errorf("Google hierarchy-free reachability = %.3f, want >= 0.60", google)
	}
	if !(google >= microsoft && microsoft >= ibm && ibm >= amazon) {
		t.Errorf("cloud ordering violated: g=%.3f m=%.3f i=%.3f a=%.3f", google, microsoft, ibm, amazon)
	}
	if amazon < 0.5 {
		t.Errorf("Amazon hierarchy-free reachability = %.3f, want >= 0.5", amazon)
	}
	if sprint > amazon {
		t.Errorf("Sprint (%.3f) should collapse below the clouds (Amazon %.3f)", sprint, amazon)
	}
	if level3 < google-0.15 {
		t.Errorf("Level 3 (%.3f) should stay near the top (Google %.3f)", level3, google)
	}
}

// The generator's output must pass the structural audit that guards real
// dataset drop-ins: no provider cycles, no islands, and a consistent
// clique (the three intentionally provider-free Tier-2s peer with every
// Tier-1, so they are clique members rather than gaps).
func TestGeneratedTopologyAuditsClean(t *testing.T) {
	in := gen2020(t, 0.25)
	for _, issue := range astopo.Audit(in.Graph) {
		t.Errorf("audit issue: %v (ASes %v)", issue, issue.ASes)
	}
}

// The 2015 preset must reflect §6.5's retrospective: a smaller Internet and
// much weaker Amazon/Microsoft peering footprints than 2020.
func TestInternet2015Shape(t *testing.T) {
	in15, err := Generate(Internet2015(0.04275))
	if err != nil {
		t.Fatal(err)
	}
	in20 := gen2020(t, 0.04275)
	if in15.Graph.NumASes() >= in20.Graph.NumASes() {
		t.Errorf("2015 graph (%d ASes) not smaller than 2020 (%d)",
			in15.Graph.NumASes(), in20.Graph.NumASes())
	}
	ratio := float64(in15.Graph.NumASes()) / float64(in20.Graph.NumASes())
	if ratio < 0.6 || ratio > 0.9 {
		t.Errorf("2015/2020 size ratio %.2f, want ~0.75 (51,801/69,488)", ratio)
	}
	for _, cloud := range []string{"Amazon", "Microsoft"} {
		p15 := len(in15.Graph.Peers(in15.Clouds[cloud]))
		p20 := len(in20.Graph.Peers(in20.Clouds[cloud]))
		if float64(p15) > 0.5*float64(p20) {
			t.Errorf("%s 2015 peers (%d) not far below 2020 (%d)", cloud, p15, p20)
		}
	}
	// Google was already well peered in 2015 (App. E: 6,397 of 51,801).
	g15 := len(in15.Graph.Peers(in15.Clouds["Google"]))
	if frac := float64(g15) / float64(in15.Graph.NumASes()); frac < 0.05 {
		t.Errorf("2015 Google peers %.3f of ASes, want >= 0.05", frac)
	}
}
