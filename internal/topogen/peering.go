package topogen

import (
	"sort"

	"flatnet/internal/astopo"
	"flatnet/internal/geo"
)

// buildIXPs places exchanges in the most populous gazetteer cities, signs
// up members, and creates the public peering mesh: each co-located pair
// peers with probability equal to the product of the two members' openness
// factors. This is what flattens the synthetic Internet — exactly the IXP
// mechanism §2.2 describes.
func (b *builder) buildIXPs() {
	cities := geo.Cities()
	order := make([]int, len(cities))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return cities[order[i]].PopM > cities[order[j]].PopM })
	nIXP := b.spec.NumIXPs
	if nIXP > len(order) {
		nIXP = len(order)
	}
	ixpByContinent := make(map[geo.Continent][]int) // index into in.IXPs
	for k := 0; k < nIXP; k++ {
		city := geo.CityID(order[k])
		b.in.IXPs = append(b.in.IXPs, IXP{City: city})
		ixpByContinent[cities[city].Continent] = append(ixpByContinent[cities[city].Continent], k)
	}

	// Membership: how many home-continent IXPs each class typically
	// joins, and the probability of joining each candidate.
	join := func(a astopo.ASN, maxJoin int, prob float64, global bool) {
		cont := cities[b.in.HomeCity[a]].Continent
		cands := ixpByContinent[cont]
		joined := 0
		for _, k := range cands {
			if joined >= maxJoin {
				break
			}
			if b.rng.Float64() < prob {
				b.in.IXPs[k].Members = append(b.in.IXPs[k].Members, a)
				joined++
			}
		}
		if global && joined < maxJoin {
			for tries := 0; tries < 4 && joined < maxJoin; tries++ {
				k := b.rng.Intn(len(b.in.IXPs))
				if b.rng.Float64() < prob {
					b.in.IXPs[k].Members = append(b.in.IXPs[k].Members, a)
					joined++
				}
			}
		}
	}
	for _, a := range b.transits {
		join(a, 5, 0.55, true)
	}
	for _, a := range b.access {
		join(a, 3, 0.30, false)
	}
	for _, a := range b.content {
		join(a, 4, 0.45, true)
	}
	for _, a := range b.enterprise {
		join(a, 1, 0.04, false)
	}
	// Named networks deploy at exchanges worldwide: clouds at most of
	// them (their PoPs sit in IXP/colo facilities, §2.2), Tier-1s and
	// Tier-2s at a smaller share. Their peering links are created later
	// by wireNamedPeering; membership here determines which of those
	// links get numbered from IXP LANs by package netdb.
	joinGlobal := func(a astopo.ASN, prob float64) {
		for k := range b.in.IXPs {
			if b.rng.Float64() < prob {
				b.in.IXPs[k].Members = append(b.in.IXPs[k].Members, a)
			}
		}
	}
	for _, p := range b.spec.Clouds {
		joinGlobal(p.ASN, 0.70)
	}
	for _, p := range b.spec.Hypergiants {
		joinGlobal(p.ASN, 0.50)
	}
	for _, p := range b.spec.Tier2 {
		joinGlobal(p.ASN, 0.35)
	}
	for _, p := range b.spec.Tier1 {
		joinGlobal(p.ASN, 0.20)
	}

	// Peering mesh. Duplicate memberships are possible (an AS can appear
	// twice at one IXP by the random join above); AddPeerIfAbsent
	// de-duplicates links, and self pairs are skipped.
	for k := range b.in.IXPs {
		members := b.in.IXPs[k].Members
		for i := 0; i < len(members); i++ {
			oi := b.openness(members[i])
			for j := i + 1; j < len(members); j++ {
				if members[i] == members[j] {
					continue
				}
				p := oi * b.openness(members[j])
				if p > 0 && b.rng.Float64() < p {
					b.in.Graph.AddPeerIfAbsent(members[i], members[j])
				}
			}
		}
	}
}

func (b *builder) openness(a astopo.ASN) float64 {
	return b.spec.Openness[b.in.Class[a]]
}

// wireNamedPeering applies each named profile's peering fractions: shares
// of the Tier-1 and Tier-2 sets, probability-scaled peering with regional
// transits (largest first — footprints are built out toward big peers, as
// Microsoft's traffic-volume validation in §5 implies), and Bernoulli
// peering with access and content edges.
func (b *builder) wireNamedPeering() {
	// Rank transits by customer count, descending; rankBoost concentrates
	// named networks' transit peerings on the top of that ranking.
	ranked := append([]astopo.ASN(nil), b.transits...)
	sort.Slice(ranked, func(i, j int) bool {
		ci, cj := b.custCount[ranked[i]], b.custCount[ranked[j]]
		if ci != cj {
			return ci > cj
		}
		return ranked[i] < ranked[j]
	})
	rankBoost := func(pos int) float64 {
		frac := float64(pos) / float64(len(ranked))
		switch {
		case frac < 0.25:
			return 1.6
		case frac < 0.5:
			return 1.1
		case frac < 0.75:
			return 0.7
		default:
			return 0.4
		}
	}

	apply := func(p Profile) {
		g := b.in.Graph
		for _, t := range b.spec.Tier1 {
			if t.ASN != p.ASN && b.rng.Float64() < p.PeerTier1 {
				g.AddPeerIfAbsent(p.ASN, t.ASN)
			}
		}
		for _, t := range b.spec.Tier2 {
			if t.ASN != p.ASN && b.rng.Float64() < p.PeerTier2 {
				g.AddPeerIfAbsent(p.ASN, t.ASN)
			}
		}
		for pos, a := range ranked {
			if a == p.ASN {
				continue
			}
			prob := p.PeerTransit * rankBoost(pos)
			if prob > 1 {
				prob = 1
			}
			if b.rng.Float64() < prob {
				g.AddPeerIfAbsent(p.ASN, a)
			}
		}
		for _, a := range b.access {
			if b.rng.Float64() < p.PeerAccess {
				g.AddPeerIfAbsent(p.ASN, a)
			}
		}
		for _, a := range b.content {
			if a != p.ASN && b.rng.Float64() < p.PeerContent {
				g.AddPeerIfAbsent(p.ASN, a)
			}
		}
	}
	for _, group := range [][]Profile{b.spec.Tier1, b.spec.Tier2, b.spec.Clouds, b.spec.Hypergiants} {
		for _, p := range group {
			apply(p)
		}
	}
}
