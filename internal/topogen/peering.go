package topogen

import (
	"math"
	"sort"

	"flatnet/internal/astopo"
	"flatnet/internal/geo"
)

// buildIXPs places exchanges in the most populous gazetteer cities, signs
// up members, and creates the public peering mesh: each co-located pair
// peers with probability equal to the product of the two members' openness
// factors. This is what flattens the synthetic Internet — exactly the IXP
// mechanism §2.2 describes.
func (b *builder) buildIXPs() {
	cities := geo.Cities()
	order := make([]int, len(cities))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return cities[order[i]].PopM > cities[order[j]].PopM })
	nIXP := b.spec.NumIXPs
	if nIXP > len(order) {
		nIXP = len(order)
	}
	ixpByContinent := make(map[geo.Continent][]int) // index into in.IXPs
	for k := 0; k < nIXP; k++ {
		city := geo.CityID(order[k])
		b.in.IXPs = append(b.in.IXPs, IXP{City: city})
		ixpByContinent[cities[city].Continent] = append(ixpByContinent[cities[city].Continent], k)
	}

	// Membership: how many home-continent IXPs each class typically
	// joins, and the probability of joining each candidate.
	join := func(a astopo.ASN, maxJoin int, prob float64, global bool) {
		cont := cities[b.home[a]].Continent
		cands := ixpByContinent[cont]
		joined := 0
		for _, k := range cands {
			if joined >= maxJoin {
				break
			}
			if b.rng.Float64() < prob {
				b.in.IXPs[k].Members = append(b.in.IXPs[k].Members, a)
				joined++
			}
		}
		if global && joined < maxJoin {
			for tries := 0; tries < 4 && joined < maxJoin; tries++ {
				k := b.rng.Intn(len(b.in.IXPs))
				if b.rng.Float64() < prob {
					b.in.IXPs[k].Members = append(b.in.IXPs[k].Members, a)
					joined++
				}
			}
		}
	}
	for _, a := range b.transits {
		join(a, 5, 0.55, true)
	}
	for _, a := range b.access {
		join(a, 3, 0.30, false)
	}
	for _, a := range b.content {
		join(a, 4, 0.45, true)
	}
	for _, a := range b.enterprise {
		join(a, 1, 0.04, false)
	}
	// Named networks deploy at exchanges worldwide: clouds at most of
	// them (their PoPs sit in IXP/colo facilities, §2.2), Tier-1s and
	// Tier-2s at a smaller share. Their peering links are created later
	// by wireNamedPeering; membership here determines which of those
	// links get numbered from IXP LANs by package netdb.
	joinGlobal := func(a astopo.ASN, prob float64) {
		for k := range b.in.IXPs {
			if b.rng.Float64() < prob {
				b.in.IXPs[k].Members = append(b.in.IXPs[k].Members, a)
			}
		}
	}
	for _, p := range b.spec.Clouds {
		joinGlobal(p.ASN, 0.70)
	}
	for _, p := range b.spec.Hypergiants {
		joinGlobal(p.ASN, 0.50)
	}
	for _, p := range b.spec.Tier2 {
		joinGlobal(p.ASN, 0.35)
	}
	for _, p := range b.spec.Tier1 {
		joinGlobal(p.ASN, 0.20)
	}

	// Peering mesh: each co-located pair peers with the product of the
	// two members' class openness factors (see meshMembers).
	product := func(ci, cj ASClass) float64 {
		return b.spec.Openness[ci] * b.spec.Openness[cj]
	}
	for k := range b.in.IXPs {
		b.meshMembers(b.in.IXPs[k].Members, product, func(x, y astopo.ASN) {
			b.in.Graph.AddPeerIfAbsent(x, y)
		})
	}
}

// meshMembers draws a public peering mesh over one exchange's member list:
// every unordered pair of members is accepted with prob(classA, classB),
// and accepted pairs are handed to emit. The pair probability is constant
// across any pair of class buckets, so bucketing members by class and
// geometric skip-sampling each bucket pair visits only the accepted pairs,
// turning the mesh from O(members²) RNG draws into O(members + edges) —
// the difference between hours and seconds at the -scale 20 preset.
// Duplicate memberships are possible (an AS can appear twice at one IXP by
// the random join above); self pairs are skipped here and emit callers
// de-duplicate links. The RNG consumption for a given member list depends
// only on the probabilities, which keeps generation and the timeline's
// growth steps (which reuse this with marginal probabilities) replayable.
func (b *builder) meshMembers(members []astopo.ASN, prob func(ci, cj ASClass) float64, emit func(x, y astopo.ASN)) {
	var buckets [ClassCloud + 1][]astopo.ASN
	for _, m := range members {
		c := b.class[m]
		buckets[c] = append(buckets[c], m)
	}
	for ci := range buckets {
		A := buckets[ci]
		p := prob(ASClass(ci), ASClass(ci))
		// Within-bucket pairs (i < j), row by row.
		for i := 0; i < len(A); i++ {
			ai := A[i]
			b.rowSample(len(A)-i-1, p, func(dj int) {
				if aj := A[i+1+dj]; ai != aj {
					emit(ai, aj)
				}
			})
		}
		// Cross-bucket pairs against every later class bucket.
		for cj := ci + 1; cj < len(buckets); cj++ {
			pc := prob(ASClass(ci), ASClass(cj))
			B := buckets[cj]
			for _, ai := range A {
				b.rowSample(len(B), pc, func(j int) {
					if aj := B[j]; ai != aj {
						emit(ai, aj)
					}
				})
			}
		}
	}
}

// rowSample invokes emit for each index of a virtual n-element row accepted
// by an independent Bernoulli(p) draw, visiting only the accepted indexes:
// the gap to the next acceptance is drawn from the geometric distribution
// as floor(ln(U)/ln(1-p)). Cost is O(accepted + 1) RNG draws instead of
// O(n).
func (b *builder) rowSample(n int, p float64, emit func(int)) {
	if n <= 0 || p <= 0 {
		return
	}
	if p >= 1 {
		for t := 0; t < n; t++ {
			emit(t)
		}
		return
	}
	logq := math.Log1p(-p)
	t := 0
	for {
		u := 1 - b.rng.Float64() // (0, 1]: ln is finite and <= 0
		skip := math.Floor(math.Log(u) / logq)
		if skip >= float64(n-t) {
			return
		}
		t += int(skip)
		emit(t)
		t++
		if t >= n {
			return
		}
	}
}

func (b *builder) openness(a astopo.ASN) float64 {
	return b.spec.Openness[b.class[a]]
}

// wireNamedPeering applies each named profile's peering fractions: shares
// of the Tier-1 and Tier-2 sets, probability-scaled peering with regional
// transits (largest first — footprints are built out toward big peers, as
// Microsoft's traffic-volume validation in §5 implies), and Bernoulli
// peering with access and content edges.
func (b *builder) wireNamedPeering() {
	// Rank transits by customer count, descending; rankBoost concentrates
	// named networks' transit peerings on the top of that ranking.
	ranked := append([]astopo.ASN(nil), b.transits...)
	sort.Slice(ranked, func(i, j int) bool {
		ci, cj := b.custCount[ranked[i]], b.custCount[ranked[j]]
		if ci != cj {
			return ci > cj
		}
		return ranked[i] < ranked[j]
	})
	rankBoost := func(pos int) float64 {
		frac := float64(pos) / float64(len(ranked))
		switch {
		case frac < 0.25:
			return 1.6
		case frac < 0.5:
			return 1.1
		case frac < 0.75:
			return 0.7
		default:
			return 0.4
		}
	}

	apply := func(p Profile) {
		g := b.in.Graph
		for _, t := range b.spec.Tier1 {
			if t.ASN != p.ASN && b.rng.Float64() < p.PeerTier1 {
				g.AddPeerIfAbsent(p.ASN, t.ASN)
			}
		}
		for _, t := range b.spec.Tier2 {
			if t.ASN != p.ASN && b.rng.Float64() < p.PeerTier2 {
				g.AddPeerIfAbsent(p.ASN, t.ASN)
			}
		}
		for pos, a := range ranked {
			if a == p.ASN {
				continue
			}
			prob := p.PeerTransit * rankBoost(pos)
			if prob > 1 {
				prob = 1
			}
			if b.rng.Float64() < prob {
				g.AddPeerIfAbsent(p.ASN, a)
			}
		}
		// Edge peerings are a constant Bernoulli per AS, so skip-sample
		// the accepted indexes instead of drawing once per edge AS.
		b.rowSample(len(b.access), p.PeerAccess, func(i int) {
			g.AddPeerIfAbsent(p.ASN, b.access[i])
		})
		b.rowSample(len(b.content), p.PeerContent, func(i int) {
			if a := b.content[i]; a != p.ASN {
				g.AddPeerIfAbsent(p.ASN, a)
			}
		})
	}
	for _, group := range [][]Profile{b.spec.Tier1, b.spec.Tier2, b.spec.Clouds, b.spec.Hypergiants} {
		for _, p := range group {
			apply(p)
		}
	}
}
