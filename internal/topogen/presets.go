package topogen

import (
	"fmt"
	"math"

	"flatnet/internal/astopo"
)

func astopoName(a astopo.ASN) string { return fmt.Sprintf("AS%d", a) }

// tier1Profiles returns the Tier-1 clique used by both presets. The
// edge-peering knobs differ widely on purpose: some Tier-1s (Level 3,
// Hurricane-style) aggressively peer below the hierarchy, while others
// (Sprint, Deutsche Telekom, Orange) rely on the hierarchy and on Tier-2s —
// the behaviour Appendix B dissects.
func tier1Profiles() []Profile {
	return []Profile{
		{Name: "Level 3", ASN: 3356, Class: ClassTier1, PeerTransit: 0.90, PeerAccess: 0.26, PeerContent: 0.34, PoPCount: 60, Global: true},
		{Name: "Cogent", ASN: 174, Class: ClassTier1, PeerTransit: 0.55, PeerAccess: 0.12, PeerContent: 0.20, PoPCount: 50, Global: true},
		{Name: "Telia", ASN: 1299, Class: ClassTier1, PeerTransit: 0.50, PeerAccess: 0.10, PeerContent: 0.18, PoPCount: 121, Global: true},
		{Name: "GTT", ASN: 3257, Class: ClassTier1, PeerTransit: 0.48, PeerAccess: 0.09, PeerContent: 0.15, PoPCount: 44, Global: true},
		{Name: "NTT", ASN: 2914, Class: ClassTier1, PeerTransit: 0.42, PeerAccess: 0.07, PeerContent: 0.14, PoPCount: 49, Global: true},
		{Name: "Zayo", ASN: 6461, Class: ClassTier1, PeerTransit: 0.52, PeerAccess: 0.10, PeerContent: 0.16, PoPCount: 36, Global: false},
		{Name: "Tata", ASN: 6453, Class: ClassTier1, PeerTransit: 0.30, PeerAccess: 0.04, PeerContent: 0.07, PoPCount: 94, Global: true},
		{Name: "Verizon", ASN: 701, Class: ClassTier1, PeerTransit: 0.22, PeerAccess: 0.03, PeerContent: 0.05, PoPCount: 41, Global: true},
		{Name: "It Sparkle", ASN: 6762, Class: ClassTier1, PeerTransit: 0.20, PeerAccess: 0.03, PeerContent: 0.04, PoPCount: 78, Global: true},
		{Name: "AT&T", ASN: 7018, Class: ClassTier1, PeerTransit: 0.18, PeerAccess: 0.03, PeerContent: 0.04, PoPCount: 39, Global: false},
		{Name: "Orange", ASN: 5511, Class: ClassTier1, PeerTransit: 0.08, PeerAccess: 0.01, PeerContent: 0.02, PoPCount: 30, Global: true},
		{Name: "Vodafone", ASN: 1273, Class: ClassTier1, PeerTransit: 0.14, PeerAccess: 0.02, PeerContent: 0.03, PoPCount: 31, Global: true},
		{Name: "Sprint", ASN: 1239, Class: ClassTier1, PeerTransit: 0.26, PeerAccess: 0.015, PeerContent: 0.03, PoPCount: 95, Global: true},
		{Name: "D Telekom", ASN: 3320, Class: ClassTier1, PeerTransit: 0.26, PeerAccess: 0.015, PeerContent: 0.03, PoPCount: 35, Global: false},
		{Name: "Telxius", ASN: 12956, Class: ClassTier1, PeerTransit: 0.12, PeerAccess: 0.02, PeerContent: 0.03, PoPCount: 60, Global: true},
	}
}

// tier2Profiles returns the Tier-2 set. Hurricane Electric, PCCW, and
// Liberty Global are provider-free (§6.2 observes exactly this in the
// CAIDA data); the rest buy transit from one or two Tier-1s.
func tier2Profiles() []Profile {
	return []Profile{
		{Name: "HE", ASN: 6939, Class: ClassTier2, ProviderCount: 0, PeerTier1: 1, PeerTier2: 1, PeerTransit: 0.80, PeerAccess: 0.30, PeerContent: 0.40, PoPCount: 112, Global: true},
		{Name: "PCCW", ASN: 3491, Class: ClassTier2, ProviderCount: 0, PeerTier1: 1, PeerTier2: 0.8, PeerTransit: 0.40, PeerAccess: 0.06, PeerContent: 0.08, PoPCount: 69, Global: true},
		{Name: "Lib. Glob.", ASN: 6830, Class: ClassTier2, ProviderCount: 0, PeerTier1: 1, PeerTier2: 0.7, PeerTransit: 0.20, PeerAccess: 0.05, PeerContent: 0.06, PoPCount: 40, Global: false},
		{Name: "Comcast", ASN: 7922, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.5, PeerTier2: 0.6, PeerTransit: 0.25, PeerAccess: 0.06, PeerContent: 0.15, PoPCount: 30, Global: false},
		{Name: "Telstra", ASN: 4637, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.4, PeerTier2: 0.6, PeerTransit: 0.22, PeerAccess: 0.04, PeerContent: 0.06, PoPCount: 45, Global: true},
		{Name: "Vocus", ASN: 4826, Class: ClassTier2, ProviderCount: 1, Tier1Provs: 1, PeerTier1: 0.5, PeerTier2: 0.7, PeerTransit: 0.45, PeerAccess: 0.10, PeerContent: 0.12, PoPCount: 25, Global: false},
		{Name: "RETN", ASN: 9002, Class: ClassTier2, ProviderCount: 1, Tier1Provs: 1, PeerTier1: 0.5, PeerTier2: 0.7, PeerTransit: 0.42, PeerAccess: 0.08, PeerContent: 0.12, PoPCount: 35, Global: true},
		{Name: "Comm. Net", ASN: 4134, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.3, PeerTier2: 0.5, PeerTransit: 0.18, PeerAccess: 0.03, PeerContent: 0.04, PoPCount: 28, Global: false},
		{Name: "KPN", ASN: 286, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.4, PeerTier2: 0.6, PeerTransit: 0.20, PeerAccess: 0.04, PeerContent: 0.06, PoPCount: 26, Global: false},
		{Name: "Korea Tele", ASN: 4766, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.3, PeerTier2: 0.5, PeerTransit: 0.15, PeerAccess: 0.03, PeerContent: 0.04, PoPCount: 22, Global: false},
		{Name: "TELIN PT", ASN: 7713, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 1, PeerTier1: 0.4, PeerTier2: 0.7, PeerTransit: 0.40, PeerAccess: 0.10, PeerContent: 0.10, PoPCount: 24, Global: true},
		{Name: "KCOM", ASN: 12390, Class: ClassTier2, ProviderCount: 3, Tier1Provs: 3, PeerTier1: 0.05, PeerTier2: 0.3, PeerTransit: 0.08, PeerAccess: 0.02, PeerContent: 0.02, PoPCount: 12, Global: false},
		{Name: "TDC", ASN: 3292, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.3, PeerTier2: 0.5, PeerTransit: 0.16, PeerAccess: 0.03, PeerContent: 0.04, PoPCount: 18, Global: false},
		{Name: "Telefonica", ASN: 3352, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.3, PeerTier2: 0.5, PeerTransit: 0.15, PeerAccess: 0.03, PeerContent: 0.04, PoPCount: 26, Global: true},
		{Name: "Korea SK", ASN: 9318, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.2, PeerTier2: 0.4, PeerTransit: 0.12, PeerAccess: 0.02, PeerContent: 0.03, PoPCount: 15, Global: false},
		{Name: "Tele2", ASN: 1257, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.3, PeerTier2: 0.5, PeerTransit: 0.15, PeerAccess: 0.03, PeerContent: 0.04, PoPCount: 16, Global: false},
		{Name: "KDDI", ASN: 2516, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.15, PeerTier2: 0.35, PeerTransit: 0.08, PeerAccess: 0.02, PeerContent: 0.02, PoPCount: 20, Global: false},
		{Name: "IIJapan", ASN: 2497, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.3, PeerTier2: 0.5, PeerTransit: 0.14, PeerAccess: 0.03, PeerContent: 0.04, PoPCount: 14, Global: false},
		{Name: "Brit. Tele", ASN: 5400, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.25, PeerTier2: 0.45, PeerTransit: 0.12, PeerAccess: 0.02, PeerContent: 0.03, PoPCount: 22, Global: true},
		{Name: "PT", ASN: 2860, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.2, PeerTier2: 0.4, PeerTransit: 0.10, PeerAccess: 0.02, PeerContent: 0.03, PoPCount: 10, Global: false},
		{Name: "Internap", ASN: 14744, Class: ClassTier2, ProviderCount: 3, Tier1Provs: 2, PeerTier1: 0.2, PeerTier2: 0.4, PeerTransit: 0.14, PeerAccess: 0.03, PeerContent: 0.05, PoPCount: 12, Global: false},
		{Name: "Fibrenoire", ASN: 22652, Class: ClassTier2, ProviderCount: 2, Tier1Provs: 1, PeerTier1: 0.2, PeerTier2: 0.4, PeerTransit: 0.12, PeerAccess: 0.03, PeerContent: 0.04, PoPCount: 8, Global: false},
	}
}

// cloudProfiles2020 calibrates the four clouds to the paper's September
// 2020 measurements: Google with 3 providers (two of them Tier-1s) and an
// open peering policy; Microsoft with 7 Tier-1 transit providers and a
// selective but broad footprint; IBM selective; Amazon with 20 providers
// and the smallest peering footprint (§4.1, §6.2–6.4).
func cloudProfiles2020() []Profile {
	return []Profile{
		{Name: "Google", ASN: 15169, Class: ClassCloud, ProviderCount: 3, Tier1Provs: 2, PreferredProviders: []astopo.ASN{6453, 3257, 22356}, PeerTier1: 1, PeerTier2: 1, PeerTransit: 0.88, PeerAccess: 0.135, PeerContent: 0.30, PoPCount: 56, Global: true},
		{Name: "Microsoft", ASN: 8075, Class: ClassCloud, ProviderCount: 7, Tier1Provs: 7, PeerTier1: 0.2, PeerTier2: 0.9, PeerTransit: 0.74, PeerAccess: 0.045, PeerContent: 0.12, PoPCount: 117, Global: true},
		{Name: "IBM", ASN: 36351, Class: ClassCloud, ProviderCount: 5, Tier1Provs: 3, PeerTier1: 0.5, PeerTier2: 0.8, PeerTransit: 0.62, PeerAccess: 0.05, PeerContent: 0.12, PoPCount: 48, Global: false},
		{Name: "Amazon", ASN: 16509, Class: ClassCloud, ProviderCount: 20, Tier1Provs: 8, PeerTier1: 0.3, PeerTier2: 0.6, PeerTransit: 0.55, PeerAccess: 0.01, PeerContent: 0.05, PoPCount: 78, Global: true},
	}
}

// cloudProfiles2015 calibrates the 2015 retrospective (§6.5): Google and
// IBM were already well peered, while Amazon and Microsoft had small
// footprints (hierarchy-free ranks 206 and 62).
func cloudProfiles2015() []Profile {
	return []Profile{
		{Name: "Google", ASN: 15169, Class: ClassCloud, ProviderCount: 3, Tier1Provs: 2, PeerTier1: 1, PeerTier2: 1, PeerTransit: 0.80, PeerAccess: 0.12, PeerContent: 0.28, PoPCount: 40, Global: true},
		{Name: "Microsoft", ASN: 8075, Class: ClassCloud, ProviderCount: 7, Tier1Provs: 7, PeerTier1: 0.1, PeerTier2: 0.3, PeerTransit: 0.22, PeerAccess: 0.01, PeerContent: 0.05, PoPCount: 60, Global: false},
		{Name: "IBM", ASN: 36351, Class: ClassCloud, ProviderCount: 4, Tier1Provs: 2, PeerTier1: 0.4, PeerTier2: 0.7, PeerTransit: 0.60, PeerAccess: 0.04, PeerContent: 0.10, PoPCount: 30, Global: false},
		{Name: "Amazon", ASN: 16509, Class: ClassCloud, ProviderCount: 15, Tier1Provs: 6, PeerTier1: 0.1, PeerTier2: 0.2, PeerTransit: 0.10, PeerAccess: 0.003, PeerContent: 0.02, PoPCount: 40, Global: false},
	}
}

func hypergiantProfiles() []Profile {
	return []Profile{
		{Name: "Facebook", ASN: 32934, Class: ClassContent, ProviderCount: 3, Tier1Provs: 2, PeerTier1: 0.8, PeerTier2: 0.9, PeerTransit: 0.80, PeerAccess: 0.10, PeerContent: 0.20, PoPCount: 60, Global: true},
		{Name: "Wikimedia", ASN: 14907, Class: ClassContent, ProviderCount: 2, Tier1Provs: 1, PeerTier1: 0.5, PeerTier2: 0.8, PeerTransit: 0.70, PeerAccess: 0.06, PeerContent: 0.10, PoPCount: 10, Global: false},
		{Name: "G-Core Labs", ASN: 199524, Class: ClassContent, ProviderCount: 2, Tier1Provs: 1, PeerTier1: 0.5, PeerTier2: 0.8, PeerTransit: 0.72, PeerAccess: 0.07, PeerContent: 0.12, PoPCount: 25, Global: true},
		{Name: "SG.GS", ASN: 24482, Class: ClassTransit, ProviderCount: 2, Tier1Provs: 1, PeerTier1: 0.5, PeerTier2: 0.8, PeerTransit: 0.74, PeerAccess: 0.08, PeerContent: 0.14, PoPCount: 8, Global: false},
		{Name: "COLT", ASN: 8220, Class: ClassTransit, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.5, PeerTier2: 0.8, PeerTransit: 0.70, PeerAccess: 0.08, PeerContent: 0.12, PoPCount: 30, Global: false},
		{Name: "Core-Backbone", ASN: 33891, Class: ClassTransit, ProviderCount: 2, Tier1Provs: 1, PeerTier1: 0.5, PeerTier2: 0.8, PeerTransit: 0.70, PeerAccess: 0.07, PeerContent: 0.12, PoPCount: 12, Global: false},
		{Name: "WV FIBER", ASN: 19151, Class: ClassTransit, ProviderCount: 1, Tier1Provs: 1, PeerTier1: 0.6, PeerTier2: 0.8, PeerTransit: 0.68, PeerAccess: 0.07, PeerContent: 0.12, PoPCount: 14, Global: false},
		{Name: "IPTP", ASN: 41095, Class: ClassTransit, ProviderCount: 2, Tier1Provs: 1, PeerTier1: 0.5, PeerTier2: 0.7, PeerTransit: 0.62, PeerAccess: 0.06, PeerContent: 0.10, PoPCount: 20, Global: true},
		{Name: "Swisscom", ASN: 3303, Class: ClassTransit, ProviderCount: 2, Tier1Provs: 2, PeerTier1: 0.4, PeerTier2: 0.7, PeerTransit: 0.62, PeerAccess: 0.06, PeerContent: 0.10, PoPCount: 18, Global: false},
		{Name: "Durand do Brasil", ASN: 22356, Class: ClassTransit, ProviderCount: 2, Tier1Provs: 1, PeerTier1: 0.3, PeerTier2: 0.5, PeerTransit: 0.30, PeerAccess: 0.04, PeerContent: 0.06, PoPCount: 10, Global: false},
	}
}

// opennessDamping keeps link density roughly scale-invariant: the IXP
// count is fixed, so memberships per exchange grow linearly with the AS
// count and pairwise peerings quadratically. Damping the per-member
// openness by sqrt(n0/n) for graphs larger than the calibration size n0
// cancels the quadratic term; smaller graphs are left exactly as
// calibrated.
func opennessDamping(n, n0 int) float64 {
	if n <= n0 {
		return 1
	}
	return math.Sqrt(float64(n0) / float64(n))
}

func dampOpenness(m map[ASClass]float64, factor float64) map[ASClass]float64 {
	out := make(map[ASClass]float64, len(m))
	for k, v := range m {
		out[k] = v * factor
	}
	return out
}

// Internet2020 returns the September-2020-calibrated preset at the given
// scale. Scale is true scale: 1.0 is the 69,488 ASes the paper measures in
// September 2020, 20 is the ~1.4M-AS stress preset, and ~0.05 reproduces
// the small replica the calibration anchors were fitted on (3,465 ASes).
// The openness damping anchor stays at that absolute calibration size, so
// link density remains scale-invariant across the whole range.
func Internet2020(scale float64) Spec {
	n := int(69488 * scale)
	return Spec{
		Name:       "2020",
		Seed:       20200901,
		NumASes:    n,
		NumTransit: n / 20,
		FracAccess: 0.48, FracContent: 0.13,
		NumIXPs: 60,
		Openness: dampOpenness(map[ASClass]float64{
			ClassTransit:    0.20,
			ClassAccess:     0.20,
			ClassContent:    0.38,
			ClassEnterprise: 0.03,
		}, opennessDamping(n, 3465)),
		Tier1:       tier1Profiles(),
		Tier2:       tier2Profiles(),
		Clouds:      cloudProfiles2020(),
		Hypergiants: hypergiantProfiles(),
	}
}

// Internet2015 returns the September-2015-calibrated preset: 74.5% of the
// 2020 AS count (51,801 / 69,488 at the same true scale), a sparser peering
// mesh, and the clouds' 2015 footprints.
func Internet2015(scale float64) Spec {
	n := int(51801 * scale)
	return Spec{
		Name:       "2015",
		Seed:       20150901,
		NumASes:    n,
		NumTransit: n / 20,
		FracAccess: 0.48, FracContent: 0.11,
		NumIXPs: 45,
		Openness: dampOpenness(map[ASClass]float64{
			ClassTransit:    0.16,
			ClassAccess:     0.15,
			ClassContent:    0.30,
			ClassEnterprise: 0.02,
		}, opennessDamping(n, 2583)),
		Tier1:       tier1Profiles(),
		Tier2:       tier2Profiles(),
		Clouds:      cloudProfiles2015(),
		Hypergiants: hypergiantProfiles(),
	}
}
