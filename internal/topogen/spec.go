// Package topogen generates seeded synthetic Internet topologies whose
// structure follows the AS-level ecosystem the paper measures: a fully
// meshed Tier-1 clique, Tier-2 ISPs, regional transit providers, access /
// content / enterprise edge ASes attached by preferential attachment,
// IXP-mediated peering meshes, and cloud providers with calibrated peering
// footprints and transit-provider counts.
//
// The generator substitutes for the CAIDA September 2015 / September 2020
// AS-relationship datasets (see DESIGN.md §2). Presets Internet2015 and
// Internet2020 are calibrated so that the paper's qualitative results —
// orderings, ratios, crossovers — reproduce at a configurable scale.
package topogen

import (
	"flatnet/internal/astopo"
	"flatnet/internal/geo"
)

// ASClass categorizes an AS's role in the generated topology.
type ASClass uint8

const (
	// ClassTier1 is a member of the fully meshed provider-free clique.
	ClassTier1 ASClass = iota
	// ClassTier2 is a large global or regional transit ISP below the
	// clique (the paper's Tier-2 exclusion set).
	ClassTier2
	// ClassTransit is a regional mid-tier transit provider.
	ClassTransit
	// ClassAccess is an eyeball ISP serving end users.
	ClassAccess
	// ClassContent is a content or hosting network.
	ClassContent
	// ClassEnterprise is a stub enterprise network.
	ClassEnterprise
	// ClassCloud is one of the major cloud providers under study.
	ClassCloud
)

func (c ASClass) String() string {
	switch c {
	case ClassTier1:
		return "tier1"
	case ClassTier2:
		return "tier2"
	case ClassTransit:
		return "transit"
	case ClassAccess:
		return "access"
	case ClassContent:
		return "content"
	case ClassEnterprise:
		return "enterprise"
	case ClassCloud:
		return "cloud"
	}
	return "unknown"
}

// Profile describes a named network (Tier-1, Tier-2, cloud, or hypergiant)
// with its connectivity and footprint knobs.
type Profile struct {
	Name  string
	ASN   astopo.ASN
	Class ASClass

	// ProviderCount is the total number of transit providers; Tier1Provs
	// of them are drawn from the Tier-1 clique, the rest from Tier-2s
	// and large regional transits. PreferredProviders are taken first
	// (e.g. Google's documented Tata, GTT, and Durand do Brasil transit
	// relationships, §6.2).
	ProviderCount      int
	Tier1Provs         int
	PreferredProviders []astopo.ASN

	// PeerTier1 / PeerTier2 are the fractions of the Tier-1 / Tier-2
	// sets this network peers with (excluding its providers).
	PeerTier1, PeerTier2 float64

	// PeerTransit / PeerAccess / PeerContent are the probabilities of a
	// settlement-free peering with each regional transit, access, or
	// content AS. Transit peering probability is additionally scaled by
	// the transit's size rank so that big regional transits are peered
	// first (how clouds actually build out).
	PeerTransit, PeerAccess, PeerContent float64

	// PoPCount is the number of metro PoPs deployed (Table 3); Global
	// spreads them over all continents instead of concentrating on
	// North America / Europe / Asia.
	PoPCount int
	Global   bool
}

// Spec parameterizes a generated Internet.
type Spec struct {
	// Name labels the dataset (e.g. "2020").
	Name string
	// Seed drives all randomness; equal specs generate equal graphs.
	Seed int64

	// NumASes is the approximate total AS count. The named profiles,
	// transits, and edge ASes are carved out of it.
	NumASes int
	// NumTransit is the number of regional mid-tier transit providers.
	NumTransit int
	// FracAccess and FracContent split the remaining edge ASes; the
	// leftover fraction becomes enterprises.
	FracAccess, FracContent float64

	// NumIXPs is the number of Internet exchange points, placed in the
	// most populous gazetteer cities.
	NumIXPs int

	// Openness is the per-class probability factor that an IXP member
	// peers with a co-located member; the pairwise probability is the
	// product of the two members' factors.
	Openness map[ASClass]float64

	// Tier1, Tier2, Clouds, and Hypergiants are the named networks.
	Tier1, Tier2, Clouds, Hypergiants []Profile
}

// Internet is a generated topology with its ground-truth annotations.
type Internet struct {
	Spec  Spec
	Graph *astopo.Graph

	// Tier1 and Tier2 are the exclusion sets for the reachability
	// metrics, as defined by construction.
	Tier1, Tier2 astopo.ASSet

	// Clouds holds the cloud-provider ASNs keyed by name; Hypergiants
	// likewise (e.g. Facebook).
	Clouds, Hypergiants map[string]astopo.ASN

	// Meta holds the dense per-AS annotations (class, name, home city,
	// PoPs), indexed by the graph's dense index. Access it through the
	// ClassOf/NameOf/HomeCityOf/PoPsOf accessors (or the *At variants when
	// a dense index is already at hand).
	Meta *ASMeta

	// IXPs lists the exchanges with their member ASes.
	IXPs []IXP
}

// ASMeta is the dense per-AS annotation table. All slices are indexed by
// (or offset by) the owning graph's dense index and may borrow read-only
// memory from an mmap'd snapshot — never mutate them after construction.
type ASMeta struct {
	// Class holds every AS's role.
	Class []ASClass
	// Home holds every AS's home city.
	Home []geo.CityID
	// PoPOff/PoPArena are the CSR form of the per-AS PoP city lists:
	// AS i's PoPs are PoPArena[PoPOff[i]:PoPOff[i+1]]. len(PoPOff) == n+1.
	PoPOff   []int32
	PoPArena []geo.CityID
	// NameOff/NameBlob hold the display names of named networks: AS i is
	// named NameBlob[NameOff[i]:NameOff[i+1]] (empty for unnamed ASes).
	NameOff  []int32
	NameBlob []byte
}

// NewASMeta builds the dense annotation table for a frozen graph from
// map-form annotations (the shape the generator and the v1 snapshot decoder
// produce).
func NewASMeta(g *astopo.Graph, class map[astopo.ASN]ASClass, name map[astopo.ASN]string,
	home map[astopo.ASN]geo.CityID, pops map[astopo.ASN][]geo.CityID) *ASMeta {
	nodes := g.ASes()
	n := len(nodes)
	m := &ASMeta{
		Class:   make([]ASClass, n),
		Home:    make([]geo.CityID, n),
		PoPOff:  make([]int32, n+1),
		NameOff: make([]int32, n+1),
	}
	var nPops, nameBytes int
	for _, a := range nodes {
		nPops += len(pops[a])
		nameBytes += len(name[a])
	}
	m.PoPArena = make([]geo.CityID, 0, nPops)
	m.NameBlob = make([]byte, 0, nameBytes)
	for i, a := range nodes {
		m.Class[i] = class[a]
		m.Home[i] = home[a]
		m.PoPArena = append(m.PoPArena, pops[a]...)
		m.PoPOff[i+1] = int32(len(m.PoPArena))
		m.NameBlob = append(m.NameBlob, name[a]...)
		m.NameOff[i+1] = int32(len(m.NameBlob))
	}
	return m
}

// IXP is one exchange point.
type IXP struct {
	City    geo.CityID
	Members []astopo.ASN
}

// CloudASN returns the ASN of the named cloud, or false.
func (in *Internet) CloudASN(name string) (astopo.ASN, bool) {
	a, ok := in.Clouds[name]
	return a, ok
}

// ClassAt returns the class of the AS at a dense index.
func (in *Internet) ClassAt(i int) ASClass { return in.Meta.Class[i] }

// ClassOf returns the class of an AS (the zero class for unknown ASNs).
func (in *Internet) ClassOf(a astopo.ASN) ASClass {
	if i, ok := in.Graph.Index(a); ok {
		return in.Meta.Class[i]
	}
	return 0
}

// HomeCityAt returns the home city of the AS at a dense index.
func (in *Internet) HomeCityAt(i int) geo.CityID { return in.Meta.Home[i] }

// HomeCityOf returns the home city of an AS, or false for unknown ASNs.
func (in *Internet) HomeCityOf(a astopo.ASN) (geo.CityID, bool) {
	i, ok := in.Graph.Index(a)
	if !ok {
		return 0, false
	}
	return in.Meta.Home[i], true
}

// PoPsAt returns the PoP cities of the AS at a dense index. The returned
// slice is shared (possibly read-only); callers must not modify it.
func (in *Internet) PoPsAt(i int) []geo.CityID {
	return in.Meta.PoPArena[in.Meta.PoPOff[i]:in.Meta.PoPOff[i+1]]
}

// PoPsOf returns the PoP cities of an AS (nil for unknown or unnamed ASes).
// The returned slice is shared (possibly read-only); callers must not
// modify it.
func (in *Internet) PoPsOf(a astopo.ASN) []geo.CityID {
	if i, ok := in.Graph.Index(a); ok {
		return in.PoPsAt(i)
	}
	return nil
}

// NameAt returns the display name of the AS at a dense index.
func (in *Internet) NameAt(i int) string {
	m := in.Meta
	if m.NameOff[i] != m.NameOff[i+1] {
		return string(m.NameBlob[m.NameOff[i]:m.NameOff[i+1]])
	}
	return astopoName(in.Graph.ASNAt(i))
}

// NameOf returns the display name of an AS ("AS<n>" for unnamed ones).
func (in *Internet) NameOf(a astopo.ASN) string {
	if i, ok := in.Graph.Index(a); ok {
		m := in.Meta
		if m.NameOff[i] != m.NameOff[i+1] {
			return string(m.NameBlob[m.NameOff[i]:m.NameOff[i+1]])
		}
	}
	return astopoName(a)
}

// ProviderFreeMask returns the exclusion mask for reach(o, I \ P_o).
func (in *Internet) ProviderFreeMask(o astopo.ASN) []bool {
	return buildMask(in.Graph, in.Graph.Providers(o))
}

// Tier1FreeMask returns the mask for reach(o, I \ P_o \ T1).
func (in *Internet) Tier1FreeMask(o astopo.ASN) []bool {
	mask := in.ProviderFreeMask(o)
	for a := range in.Tier1 {
		if a == o {
			continue
		}
		if i, ok := in.Graph.Index(a); ok {
			mask[i] = true
		}
	}
	return mask
}

// HierarchyFreeMask returns the mask for reach(o, I \ P_o \ T1 \ T2).
func (in *Internet) HierarchyFreeMask(o astopo.ASN) []bool {
	mask := in.Tier1FreeMask(o)
	for a := range in.Tier2 {
		if a == o {
			continue
		}
		if i, ok := in.Graph.Index(a); ok {
			mask[i] = true
		}
	}
	return mask
}

func buildMask(g *astopo.Graph, asns []astopo.ASN) []bool {
	g.Freeze()
	mask := make([]bool, g.NumASes())
	for _, a := range asns {
		if i, ok := g.Index(a); ok {
			mask[i] = true
		}
	}
	return mask
}
