// Timeline: the longitudinal preset family. SpecForYear interpolates the
// calibrated 2015 and 2020 presets year by year (and extrapolates the same
// trends to 2025); EvolveStep derives the deterministic growth delta that
// turns one year's world into the next; ApplyDelta applies such a delta
// structurally. GenerateYear composes them: the 2015 world evolved forward
// one year at a time.
//
// The factorization is what makes longitudinal worlds cheap to verify:
// a "fresh" year-N world and a "delta-evolved" year-N world are the same
// code path (both are ApplyDelta folds over the same GrowthDelta values),
// so they are byte-identical by construction, and the only property that
// needs testing is that EvolveStep is deterministic.
package topogen

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"flatnet/internal/astopo"
	"flatnet/internal/geo"
)

const (
	// TimelineFirstYear is the first year of the longitudinal family (the
	// paper's 2015 retrospective calibration).
	TimelineFirstYear = 2015
	// TimelineLastYear bounds the extrapolation: five years past the 2020
	// measurement, continuing the same linear trends.
	TimelineLastYear = 2025
)

// timelineChurn is the yearly fraction of synthetic-synthetic public
// peerings that disappear between adjacent years (depeering, mergers,
// IXP port shutdowns). Only p2p links between unnamed ASes churn: p2c
// links never do, so no AS is ever stranded without a provider.
const timelineChurn = 0.015

// SeedForYear is the timeline seed schedule. It reproduces the calibrated
// preset seeds exactly (2015 -> 20150901, 2020 -> 20200901), so the
// timeline's base year is bit-identical to the existing 2015 preset world.
func SeedForYear(year int) int64 { return int64(year)*10000 + 901 }

// lerpYear linearly interpolates a knob between its 2015 and 2020
// calibrations, extrapolating the same slope past 2020. The anchors are
// returned verbatim so the anchor years reproduce the presets exactly
// (no floating-point round trip).
func lerpYear(year int, v2015, v2020 float64) float64 {
	switch year {
	case 2015:
		return v2015
	case 2020:
		return v2020
	}
	return v2015 + (v2020-v2015)*float64(year-2015)/5
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func lerpProb(year int, a, b float64) float64 { return clamp01(lerpYear(year, a, b)) }

func lerpCount(year int, a, b int) int {
	v := lerpYear(year, float64(a), float64(b))
	if v < 0 {
		v = 0
	}
	return int(v + 0.5)
}

// lerpCloudProfile interpolates one cloud's calibration knobs between its
// 2015 and 2020 footprints. Booleans and preferred-provider lists switch
// at 2020 (a footprint globalizes once built out, it does not blend).
func lerpCloudProfile(year int, a, b Profile) Profile {
	p := b
	if year < 2020 {
		p.Global = a.Global
		p.PreferredProviders = a.PreferredProviders
	}
	p.ProviderCount = lerpCount(year, a.ProviderCount, b.ProviderCount)
	p.Tier1Provs = lerpCount(year, a.Tier1Provs, b.Tier1Provs)
	p.PoPCount = lerpCount(year, a.PoPCount, b.PoPCount)
	p.PeerTier1 = lerpProb(year, a.PeerTier1, b.PeerTier1)
	p.PeerTier2 = lerpProb(year, a.PeerTier2, b.PeerTier2)
	p.PeerTransit = lerpProb(year, a.PeerTransit, b.PeerTransit)
	p.PeerAccess = lerpProb(year, a.PeerAccess, b.PeerAccess)
	p.PeerContent = lerpProb(year, a.PeerContent, b.PeerContent)
	return p
}

// cloudProfilesForYear returns the clouds' interpolated footprints: the
// calibrated profiles at the anchor years, per-knob linear blends (and
// extrapolations) elsewhere. Tier-1, Tier-2, and hypergiant profiles stay
// constant across the family — the paper's longitudinal story is the
// clouds' flattening, not the hierarchy's membership.
func cloudProfilesForYear(year int) []Profile {
	switch {
	case year <= 2015:
		return cloudProfiles2015()
	case year == 2020:
		return cloudProfiles2020()
	}
	from, to := cloudProfiles2015(), cloudProfiles2020()
	out := make([]Profile, len(to))
	for i := range to {
		out[i] = lerpCloudProfile(year, from[i], to[i])
	}
	return out
}

// SpecForYear returns the longitudinal preset for one year at the given
// true scale. The 2015 and 2020 entries are exactly Internet2015 and
// Internet2020; intermediate years interpolate every growth knob (AS
// count, IXP count at +3/year, per-class openness, content fraction,
// cloud footprints) and 2021–2025 extrapolate the same linear trends.
// The openness damping anchor tracks the interpolated AS count so link
// density stays scale-invariant across the whole family.
func SpecForYear(year int, scale float64) (Spec, error) {
	if year < TimelineFirstYear || year > TimelineLastYear {
		return Spec{}, fmt.Errorf("topogen: year %d outside timeline range %d..%d",
			year, TimelineFirstYear, TimelineLastYear)
	}
	switch year {
	case 2015:
		return Internet2015(scale), nil
	case 2020:
		return Internet2020(scale), nil
	}
	base := lerpYear(year, 51801, 69488)
	n := int(base * scale)
	n0 := int(base * 0.04987) // reproduces the 2583 / 3465 preset anchors
	return Spec{
		Name:       strconv.Itoa(year),
		Seed:       SeedForYear(year),
		NumASes:    n,
		NumTransit: n / 20,
		FracAccess: 0.48, FracContent: lerpYear(year, 0.11, 0.13),
		NumIXPs: 45 + 3*(year-2015),
		Openness: dampOpenness(map[ASClass]float64{
			ClassTransit:    lerpYear(year, 0.16, 0.20),
			ClassAccess:     lerpYear(year, 0.15, 0.20),
			ClassContent:    lerpYear(year, 0.30, 0.38),
			ClassEnterprise: lerpYear(year, 0.02, 0.03),
		}, opennessDamping(n, n0)),
		Tier1:       tier1Profiles(),
		Tier2:       tier2Profiles(),
		Clouds:      cloudProfilesForYear(year),
		Hypergiants: hypergiantProfiles(),
	}, nil
}

// NewAS describes one AS created by a growth step.
type NewAS struct {
	ASN   astopo.ASN
	Class ASClass
	Home  geo.CityID
}

// IXPJoin records an AS joining an exchange that already existed in the
// base world; IXP indexes the base world's IXP list.
type IXPJoin struct {
	IXP    int32
	Member astopo.ASN
}

// NewIXP is an exchange opened by a growth step, with its initial members.
type NewIXP struct {
	City    geo.CityID
	Members []astopo.ASN
}

// GrowthDelta is the complete, ordered difference between two adjacent
// years of one timeline world: every AS created, every link added or
// removed (in application order), and every IXP membership change.
// Applying it to the FromYear world with ApplyDelta reproduces the ToYear
// world exactly.
type GrowthDelta struct {
	FromYear, ToYear int
	Scale            float64

	NewASes      []NewAS
	RemovedLinks []astopo.Link
	AddedLinks   []astopo.Link
	IXPJoins     []IXPJoin
	NewIXPs      []NewIXP
}

// specYear parses the year a spec names. Timeline specs are named by their
// year (the presets already follow this: "2015", "2020").
func specYear(sp Spec) (int, error) {
	y, err := strconv.Atoi(sp.Name)
	if err != nil {
		return 0, fmt.Errorf("topogen: spec %q is not a timeline year", sp.Name)
	}
	return y, nil
}

func pairKey(a, b astopo.ASN) [2]astopo.ASN {
	if b < a {
		a, b = b, a
	}
	return [2]astopo.ASN{a, b}
}

// classJoin returns the IXP membership behaviour of a synthetic class:
// how many home-continent exchanges it joins at most, and the probability
// of joining each candidate (the same constants buildIXPs uses).
func classJoin(c ASClass) (maxJoin int, prob float64) {
	switch c {
	case ClassTransit:
		return 5, 0.55
	case ClassAccess:
		return 3, 0.30
	case ClassContent:
		return 4, 0.45
	case ClassEnterprise:
		return 1, 0.04
	}
	return 0, 0
}

// marginalProb converts "linked with probability po in the old world" and
// "linked with probability pn in the new world" into the conditional
// probability of adding the link given it is absent, so the evolved world
// matches the new year's link distribution: po + (1-po)*q = pn.
func marginalProb(po, pn float64) float64 {
	po, pn = clamp01(po), clamp01(pn)
	if po >= 1 {
		return 0
	}
	return clamp01((pn - po) / (1 - po))
}

// evolver holds one growth step's working state.
type evolver struct {
	b        *builder // rng, city machinery, class/home maps, urns
	prev     *Internet
	prevSpec Spec
	spec     Spec
	d        *GrowthDelta

	pending map[[2]astopo.ASN]bool // links added this step
	removed map[[2]astopo.ASN]bool // links churned away this step

	// class boundaries: indices below these counts in the builder's class
	// lists are ASes that already existed in the base world.
	oldTransits, oldAccess, oldContent int

	memberCount map[astopo.ASN]int // IXP memberships per AS (cap bookkeeping)
	ixpMembers  [][]astopo.ASN     // evolving membership, index = base IXP index
}

// EvolveStep computes the deterministic growth delta from prev (a world of
// year Y at the given scale) to year == Y+1. It draws from an rng seeded
// by SeedForYear(year) and rebuilds all sampling state (class lists, urns,
// customer counts) from prev's graph and annotations, so equal inputs
// always produce the identical delta.
func EvolveStep(prev *Internet, year int, scale float64) (*GrowthDelta, error) {
	fromYear, err := specYear(prev.Spec)
	if err != nil {
		return nil, err
	}
	if year != fromYear+1 {
		return nil, fmt.Errorf("topogen: cannot evolve a %d world to %d: growth steps are adjacent years", fromYear, year)
	}
	spec, err := SpecForYear(year, scale)
	if err != nil {
		return nil, err
	}

	e := &evolver{
		prev:     prev,
		prevSpec: prev.Spec,
		spec:     spec,
		d:        &GrowthDelta{FromYear: fromYear, ToYear: year, Scale: scale},
		pending:  make(map[[2]astopo.ASN]bool),
		removed:  make(map[[2]astopo.ASN]bool),
	}
	e.b = &builder{spec: spec, rng: rand.New(rand.NewSource(SeedForYear(year)))}
	e.b.placeCities()
	e.rebuildState()

	e.churnLinks()
	e.growASes()
	e.wireNamedToNewASes()
	e.joinExistingIXPs()
	e.openIXPs()
	e.growOpenness()
	e.growCloudProviders()
	e.growCloudPeering()
	return e.d, nil
}

// rebuildState reconstructs the builder's sampling state from the base
// world: per-AS class/home from the dense meta table, class lists in
// dense (sorted-ASN) order, customer counts from the CSR rows, and the
// preferential-attachment urns with multiplicity 1 + customer count (an
// AS that won customers is proportionally likelier to win more).
func (e *evolver) rebuildState() {
	b, prev := e.b, e.prev
	g := prev.Graph
	n := g.NumASes()
	b.class = make(map[astopo.ASN]ASClass, n)
	b.name = make(map[astopo.ASN]string, len(e.spec.Tier1)+len(e.spec.Tier2)+len(e.spec.Clouds)+len(e.spec.Hypergiants))
	b.home = make(map[astopo.ASN]geo.CityID, n)
	b.pops = make(map[astopo.ASN][]geo.CityID)
	b.custCount = make(map[astopo.ASN]int, n)
	b.transitUrn = make(map[geo.Continent][]astopo.ASN)

	cities := geo.Cities()
	m := prev.Meta
	for i, a := range g.ASes() {
		b.class[a] = m.Class[i]
		b.home[a] = m.Home[i]
		if m.NameOff[i] != m.NameOff[i+1] {
			b.name[a] = string(m.NameBlob[m.NameOff[i]:m.NameOff[i+1]])
		}
		if pops := m.PoPArena[m.PoPOff[i]:m.PoPOff[i+1]]; len(pops) > 0 {
			b.pops[a] = pops
		}
		custs := len(g.CustomersOf(i))
		if custs > 0 {
			b.custCount[a] = custs
		}
		switch m.Class[i] {
		case ClassTransit:
			b.transits = append(b.transits, a)
			cont := cities[m.Home[i]].Continent
			for k := 0; k < 1+custs; k++ {
				b.transitUrn[cont] = append(b.transitUrn[cont], a)
				b.anyTransit = append(b.anyTransit, a)
			}
		case ClassAccess:
			b.access = append(b.access, a)
		case ClassContent:
			b.content = append(b.content, a)
		case ClassEnterprise:
			b.enterprise = append(b.enterprise, a)
		}
	}
	for _, p := range e.spec.Tier2 {
		for k := 0; k < 1+b.custCount[p.ASN]; k++ {
			b.tier2Urn = append(b.tier2Urn, p.ASN)
		}
	}
	for _, p := range e.spec.Tier1 {
		for k := 0; k < 1+b.custCount[p.ASN]; k++ {
			b.tier1Urn = append(b.tier1Urn, p.ASN)
		}
	}
	e.oldTransits, e.oldAccess, e.oldContent = len(b.transits), len(b.access), len(b.content)

	e.memberCount = make(map[astopo.ASN]int)
	e.ixpMembers = make([][]astopo.ASN, len(prev.IXPs))
	for k := range prev.IXPs {
		e.ixpMembers[k] = prev.IXPs[k].Members // copied on first append
		for _, a := range prev.IXPs[k].Members {
			e.memberCount[a]++
		}
	}
}

// linked reports whether a link between x and y exists in the evolved
// world so far: present in the base world (and not churned away) or added
// earlier in this step.
func (e *evolver) linked(x, y astopo.ASN) bool {
	k := pairKey(x, y)
	if e.pending[k] {
		return true
	}
	if e.removed[k] {
		return false
	}
	_, ok := e.prev.Graph.HasLink(x, y)
	return ok
}

func (e *evolver) addPeer(x, y astopo.ASN) {
	if x == y || e.linked(x, y) {
		return
	}
	e.pending[pairKey(x, y)] = true
	e.d.AddedLinks = append(e.d.AddedLinks, astopo.Link{A: x, B: y, Rel: astopo.P2P})
}

func (e *evolver) addProvider(prov, cust astopo.ASN) bool {
	if prov == cust || e.linked(prov, cust) {
		return false
	}
	e.pending[pairKey(prov, cust)] = true
	e.d.AddedLinks = append(e.d.AddedLinks, astopo.Link{A: prov, B: cust, Rel: astopo.P2C})
	e.b.custCount[prov]++
	return true
}

// churnLinks removes a small fraction of the synthetic-synthetic public
// peerings, in link-storage order. Provider links never churn.
func (e *evolver) churnLinks() {
	links := e.prev.Graph.Links()
	cands := make([]astopo.Link, 0, len(links)/2)
	for _, l := range links {
		if l.Rel == astopo.P2P && l.A >= synthBase && l.B >= synthBase {
			cands = append(cands, l)
		}
	}
	e.b.rowSample(len(cands), timelineChurn, func(i int) {
		l := cands[i]
		e.removed[pairKey(l.A, l.B)] = true
		e.d.RemovedLinks = append(e.d.RemovedLinks, l)
	})
}

// growASes creates the year's new ASes — the AS-count curve's increment,
// split into transits and edge classes by the new year's fractions — and
// attaches them to the hierarchy exactly the way the generator attaches
// their peers at birth (same urns, same probability ladder).
func (e *evolver) growASes() {
	b := e.b
	dn := e.spec.NumASes - e.prev.Graph.NumASes()
	if dn < 0 {
		dn = 0
	}
	dTransit := e.spec.NumTransit - e.prevSpec.NumTransit
	if dTransit < 0 {
		dTransit = 0
	}
	if dTransit > dn {
		dTransit = dn
	}
	rest := dn - dTransit
	nAccess := int(float64(rest) * e.spec.FracAccess)
	nContent := int(float64(rest) * e.spec.FracContent)
	nEnterprise := rest - nAccess - nContent

	nodes := e.prev.Graph.ASes()
	next := synthBase
	if len(nodes) > 0 && nodes[len(nodes)-1] >= synthBase {
		next = nodes[len(nodes)-1] + 1
	}
	cities := geo.Cities()
	create := func(class ASClass) astopo.ASN {
		a := next
		next++
		cont := b.randContinent()
		city := b.randCity(cont, false)
		b.class[a] = class
		b.home[a] = city
		e.d.NewASes = append(e.d.NewASes, NewAS{ASN: a, Class: class, Home: city})
		return a
	}
	newTransits := make([]astopo.ASN, 0, dTransit)
	for i := 0; i < dTransit; i++ {
		a := create(ClassTransit)
		b.transits = append(b.transits, a)
		newTransits = append(newTransits, a)
		cont := cities[b.home[a]].Continent
		b.transitUrn[cont] = append(b.transitUrn[cont], a)
		b.anyTransit = append(b.anyTransit, a)
	}
	newEdges := make([]astopo.ASN, 0, rest)
	for i := 0; i < nAccess; i++ {
		a := create(ClassAccess)
		b.access = append(b.access, a)
		newEdges = append(newEdges, a)
	}
	for i := 0; i < nContent; i++ {
		a := create(ClassContent)
		b.content = append(b.content, a)
		newEdges = append(newEdges, a)
	}
	for i := 0; i < nEnterprise; i++ {
		a := create(ClassEnterprise)
		b.enterprise = append(b.enterprise, a)
		newEdges = append(newEdges, a)
	}

	// Providers: new transits buy from the Tier-1/Tier-2 urns, new edges
	// attach mostly to same-continent transits — the same ladder and urn
	// growth as wireTransitProviders / wireEdgeProviders.
	for _, a := range newTransits {
		n := 1 + b.rng.Intn(3)
		used := map[astopo.ASN]bool{a: true}
		for len(used)-1 < n {
			var prov astopo.ASN
			if b.rng.Float64() < 0.35 {
				prov = b.tier1Urn[b.rng.Intn(len(b.tier1Urn))]
			} else {
				prov = b.tier2Urn[b.rng.Intn(len(b.tier2Urn))]
			}
			if used[prov] {
				continue
			}
			used[prov] = true
			if !e.addProvider(prov, a) {
				continue
			}
			if e.prev.Tier1.Has(prov) {
				b.tier1Urn = append(b.tier1Urn, prov)
			} else {
				b.tier2Urn = append(b.tier2Urn, prov)
			}
		}
	}
	nProviders := func() int {
		switch r := b.rng.Float64(); {
		case r < 0.45:
			return 1
		case r < 0.85:
			return 2
		default:
			return 3
		}
	}
	for _, a := range newEdges {
		nProv := nProviders()
		if b.class[a] == ClassContent {
			nProv++ // content multihomes more
		}
		cont := cities[b.home[a]].Continent
		used := map[astopo.ASN]bool{a: true}
		for len(used)-1 < nProv {
			var prov astopo.ASN
			switch r := b.rng.Float64(); {
			case r < 0.72 && len(b.transitUrn[cont]) > 0:
				urn := b.transitUrn[cont]
				prov = urn[b.rng.Intn(len(urn))]
			case r < 0.86:
				prov = b.anyTransit[b.rng.Intn(len(b.anyTransit))]
			case r < 0.95:
				prov = b.tier2Urn[b.rng.Intn(len(b.tier2Urn))]
			default:
				prov = b.tier1Urn[b.rng.Intn(len(b.tier1Urn))]
			}
			if used[prov] {
				continue
			}
			used[prov] = true
			if !e.addProvider(prov, a) {
				continue
			}
			if b.class[prov] == ClassTransit {
				pc := cities[b.home[prov]].Continent
				b.transitUrn[pc] = append(b.transitUrn[pc], prov)
				b.anyTransit = append(b.anyTransit, prov)
			}
		}
	}
}

// wireNamedToNewASes gives every named network its calibrated peering
// chance with the ASes born this year (in a fresh build those edges would
// have faced the full Bernoulli). New transits enter at the bottom of the
// size ranking, so they get the bottom-quartile rank boost.
func (e *evolver) wireNamedToNewASes() {
	b := e.b
	newTransits := b.transits[e.oldTransits:]
	newAccess := b.access[e.oldAccess:]
	newContent := b.content[e.oldContent:]
	groups := [][]Profile{e.spec.Tier1, e.spec.Tier2, e.spec.Clouds, e.spec.Hypergiants}
	for _, group := range groups {
		for _, p := range group {
			b.rowSample(len(newTransits), clamp01(p.PeerTransit*0.4), func(i int) {
				e.addPeer(p.ASN, newTransits[i])
			})
			b.rowSample(len(newAccess), p.PeerAccess, func(i int) {
				e.addPeer(p.ASN, newAccess[i])
			})
			b.rowSample(len(newContent), p.PeerContent, func(i int) {
				e.addPeer(p.ASN, newContent[i])
			})
		}
	}
}

// meshAgainst peers one joining member against an exchange's current
// membership with the new year's openness products.
func (e *evolver) meshAgainst(a astopo.ASN, members []astopo.ASN) {
	b := e.b
	pa := b.spec.Openness[b.class[a]]
	if pa <= 0 {
		return
	}
	var buckets [ClassCloud + 1][]astopo.ASN
	for _, m := range members {
		buckets[b.class[m]] = append(buckets[b.class[m]], m)
	}
	for ci := range buckets {
		p := pa * b.spec.Openness[ASClass(ci)]
		B := buckets[ci]
		b.rowSample(len(B), p, func(j int) {
			e.addPeer(a, B[j])
		})
	}
}

// joinExistingIXPs signs the year's new ASes up at exchanges that already
// exist, with the same per-class membership behaviour the generator uses,
// and draws their public peerings against the members already there.
func (e *evolver) joinExistingIXPs() {
	b := e.b
	cities := geo.Cities()
	ixpByCont := make(map[geo.Continent][]int)
	for k := range e.prev.IXPs {
		c := cities[e.prev.IXPs[k].City].Continent
		ixpByCont[c] = append(ixpByCont[c], k)
	}
	join := func(k int, a astopo.ASN) {
		e.meshAgainst(a, e.ixpMembers[k])
		// copy-on-append: the base membership slice may borrow read-only
		// snapshot memory.
		ms := make([]astopo.ASN, len(e.ixpMembers[k]), len(e.ixpMembers[k])+1)
		copy(ms, e.ixpMembers[k])
		e.ixpMembers[k] = append(ms, a)
		e.memberCount[a]++
		e.d.IXPJoins = append(e.d.IXPJoins, IXPJoin{IXP: int32(k), Member: a})
	}
	for _, na := range e.d.NewASes {
		maxJoin, prob := classJoin(na.Class)
		if maxJoin == 0 {
			continue
		}
		joined := 0
		for _, k := range ixpByCont[cities[na.Home].Continent] {
			if joined >= maxJoin {
				break
			}
			if b.rng.Float64() < prob {
				join(k, na.ASN)
				joined++
			}
		}
	}
}

// openIXPs places the year's new exchanges in the next most populous
// cities, recruits members (synthetic classes from the exchange's home
// continent, capped by their per-class membership budgets; named networks
// with their global join shares), and draws the full public mesh among
// the initial membership.
func (e *evolver) openIXPs() {
	b := e.b
	dIXP := e.spec.NumIXPs - len(e.prev.IXPs)
	if dIXP <= 0 {
		return
	}
	cities := geo.Cities()
	order := make([]int, len(cities))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return cities[order[i]].PopM > cities[order[j]].PopM })
	start := len(e.prev.IXPs)
	if start+dIXP > len(order) {
		dIXP = len(order) - start
	}
	product := func(ci, cj ASClass) float64 {
		return b.spec.Openness[ci] * b.spec.Openness[cj]
	}
	for k := 0; k < dIXP; k++ {
		city := geo.CityID(order[start+k])
		cont := cities[city].Continent
		var members []astopo.ASN
		recruit := func(classList []astopo.ASN, class ASClass) {
			maxJoin, prob := classJoin(class)
			cands := make([]astopo.ASN, 0, len(classList))
			for _, a := range classList {
				if cities[b.home[a]].Continent == cont && e.memberCount[a] < maxJoin {
					cands = append(cands, a)
				}
			}
			b.rowSample(len(cands), prob, func(i int) {
				members = append(members, cands[i])
				e.memberCount[cands[i]]++
			})
		}
		recruit(b.transits, ClassTransit)
		recruit(b.access, ClassAccess)
		recruit(b.content, ClassContent)
		recruit(b.enterprise, ClassEnterprise)
		joinNamed := func(ps []Profile, prob float64) {
			for _, p := range ps {
				if b.rng.Float64() < prob {
					members = append(members, p.ASN)
				}
			}
		}
		joinNamed(e.spec.Clouds, 0.70)
		joinNamed(e.spec.Hypergiants, 0.50)
		joinNamed(e.spec.Tier2, 0.35)
		joinNamed(e.spec.Tier1, 0.20)
		b.meshMembers(members, product, e.addPeer)
		e.d.NewIXPs = append(e.d.NewIXPs, NewIXP{City: city, Members: members})
	}
}

// growOpenness densifies the existing exchanges' public meshes: openness
// factors grow year over year, so each co-located pair that is not yet
// peered gets the marginal acceptance probability that lifts the old
// year's pair distribution to the new year's.
func (e *evolver) growOpenness() {
	b := e.b
	marg := func(ci, cj ASClass) float64 {
		return marginalProb(
			e.prevSpec.Openness[ci]*e.prevSpec.Openness[cj],
			e.spec.Openness[ci]*e.spec.Openness[cj],
		)
	}
	for k := range e.prev.IXPs {
		b.meshMembers(e.prev.IXPs[k].Members, marg, e.addPeer)
	}
}

// growCloudProviders adds the transit relationships the clouds' growing
// ProviderCount calls for: Tier-1 slots first, then the Tier-2/large-
// transit pool, skipping networks the cloud already has any relationship
// with.
func (e *evolver) growCloudProviders() {
	b := e.b
	for i, pNew := range e.spec.Clouds {
		pOld := e.prevSpec.Clouds[i]
		added := 0
		dT1 := pNew.Tier1Provs - pOld.Tier1Provs
		for _, t := range b.rng.Perm(len(e.spec.Tier1)) {
			if added >= dT1 {
				break
			}
			if e.addProvider(e.spec.Tier1[t].ASN, pNew.ASN) {
				added++
			}
		}
		want := pNew.ProviderCount - pOld.ProviderCount
		if want <= added {
			continue
		}
		pool := append(append([]astopo.ASN(nil), b.tier2Urn...), b.anyTransit...)
		for added < want && len(pool) > 0 {
			i := b.rng.Intn(len(pool))
			cand := pool[i]
			pool = append(pool[:i], pool[i+1:]...)
			if e.addProvider(cand, pNew.ASN) {
				added++
			}
		}
	}
}

// growCloudPeering applies the clouds' footprint build-out: for every
// peering knob that grew since last year, each not-yet-peered candidate
// gets the marginal probability that lifts last year's link distribution
// to this year's. Transit candidates keep the size-rank boost (largest
// customer cones are peered first, how clouds actually build out).
func (e *evolver) growCloudPeering() {
	b := e.b
	ranked := append([]astopo.ASN(nil), b.transits[:e.oldTransits]...)
	sort.Slice(ranked, func(i, j int) bool {
		ci, cj := b.custCount[ranked[i]], b.custCount[ranked[j]]
		if ci != cj {
			return ci > cj
		}
		return ranked[i] < ranked[j]
	})
	rankBoost := func(pos int) float64 {
		frac := float64(pos) / float64(len(ranked))
		switch {
		case frac < 0.25:
			return 1.6
		case frac < 0.5:
			return 1.1
		case frac < 0.75:
			return 0.7
		default:
			return 0.4
		}
	}
	oldAccess := b.access[:e.oldAccess]
	oldContent := b.content[:e.oldContent]
	for i, pNew := range e.spec.Clouds {
		pOld := e.prevSpec.Clouds[i]
		for _, t := range e.spec.Tier1 {
			if t.ASN != pNew.ASN && b.rng.Float64() < marginalProb(pOld.PeerTier1, pNew.PeerTier1) {
				e.addPeer(pNew.ASN, t.ASN)
			}
		}
		for _, t := range e.spec.Tier2 {
			if t.ASN != pNew.ASN && b.rng.Float64() < marginalProb(pOld.PeerTier2, pNew.PeerTier2) {
				e.addPeer(pNew.ASN, t.ASN)
			}
		}
		for pos, a := range ranked {
			boost := rankBoost(pos)
			q := marginalProb(pOld.PeerTransit*boost, pNew.PeerTransit*boost)
			if b.rng.Float64() < q {
				e.addPeer(pNew.ASN, a)
			}
		}
		b.rowSample(len(oldAccess), marginalProb(pOld.PeerAccess, pNew.PeerAccess), func(i int) {
			e.addPeer(pNew.ASN, oldAccess[i])
		})
		b.rowSample(len(oldContent), marginalProb(pOld.PeerContent, pNew.PeerContent), func(i int) {
			e.addPeer(pNew.ASN, oldContent[i])
		})
	}
}

// ApplyDelta applies a growth delta to its base world, producing the next
// year's world. The application is purely structural (no randomness): the
// base link list minus the removals, plus the additions, refrozen; the
// annotation table extended with the new ASes; the IXP memberships
// extended. It fails closed — a removal that does not match a base link,
// an addition that already exists, or an out-of-range IXP index is an
// error, not a silent skip — so a corrupted or mispaired delta can never
// produce a silently wrong world.
func ApplyDelta(prev *Internet, d *GrowthDelta) (*Internet, error) {
	fromYear, err := specYear(prev.Spec)
	if err != nil {
		return nil, err
	}
	if d.FromYear != fromYear {
		return nil, fmt.Errorf("topogen: delta %d->%d does not apply to a %d world", d.FromYear, d.ToYear, fromYear)
	}
	if d.ToYear != d.FromYear+1 {
		return nil, fmt.Errorf("topogen: delta %d->%d is not a single-year step", d.FromYear, d.ToYear)
	}
	spec, err := SpecForYear(d.ToYear, d.Scale)
	if err != nil {
		return nil, err
	}

	removed := make(map[astopo.Link]bool, len(d.RemovedLinks))
	for _, l := range d.RemovedLinks {
		removed[l] = true
	}
	if len(removed) != len(d.RemovedLinks) {
		return nil, fmt.Errorf("topogen: delta %d->%d lists a removed link twice", d.FromYear, d.ToYear)
	}
	prevLinks := prev.Graph.Links()
	links := make([]astopo.Link, 0, len(prevLinks)-len(d.RemovedLinks)+len(d.AddedLinks))
	have := make(map[[2]astopo.ASN]bool, len(prevLinks)+len(d.AddedLinks))
	dropped := 0
	for _, l := range prevLinks {
		if removed[l] {
			dropped++
			continue
		}
		links = append(links, l)
		have[pairKey(l.A, l.B)] = true
	}
	if dropped != len(d.RemovedLinks) {
		return nil, fmt.Errorf("topogen: delta %d->%d removes %d links but only %d matched the base world",
			d.FromYear, d.ToYear, len(d.RemovedLinks), dropped)
	}
	for _, l := range d.AddedLinks {
		k := pairKey(l.A, l.B)
		if have[k] {
			return nil, fmt.Errorf("topogen: delta %d->%d adds link %d-%d that already exists", d.FromYear, d.ToYear, l.A, l.B)
		}
		have[k] = true
		links = append(links, l)
	}
	g := astopo.FromLinks(links)
	g.Freeze()

	// Annotations: the base world's, extended with the new ASes.
	pm := prev.Meta
	class := make(map[astopo.ASN]ASClass, g.NumASes())
	name := make(map[astopo.ASN]string)
	home := make(map[astopo.ASN]geo.CityID, g.NumASes())
	pops := make(map[astopo.ASN][]geo.CityID)
	for i, a := range prev.Graph.ASes() {
		class[a] = pm.Class[i]
		home[a] = pm.Home[i]
		if pm.NameOff[i] != pm.NameOff[i+1] {
			name[a] = string(pm.NameBlob[pm.NameOff[i]:pm.NameOff[i+1]])
		}
		if ps := pm.PoPArena[pm.PoPOff[i]:pm.PoPOff[i+1]]; len(ps) > 0 {
			pops[a] = ps
		}
	}
	for _, na := range d.NewASes {
		class[na.ASN] = na.Class
		home[na.ASN] = na.Home
	}

	ixps := make([]IXP, len(prev.IXPs), len(prev.IXPs)+len(d.NewIXPs))
	for i, x := range prev.IXPs {
		ms := make([]astopo.ASN, len(x.Members))
		copy(ms, x.Members)
		ixps[i] = IXP{City: x.City, Members: ms}
	}
	for _, j := range d.IXPJoins {
		if j.IXP < 0 || int(j.IXP) >= len(prev.IXPs) {
			return nil, fmt.Errorf("topogen: delta %d->%d joins IXP %d of %d", d.FromYear, d.ToYear, j.IXP, len(prev.IXPs))
		}
		ixps[j.IXP].Members = append(ixps[j.IXP].Members, j.Member)
	}
	for _, nx := range d.NewIXPs {
		ixps = append(ixps, IXP{City: nx.City, Members: append([]astopo.ASN(nil), nx.Members...)})
	}

	in := &Internet{
		Spec:        spec,
		Graph:       g,
		Tier1:       make(astopo.ASSet, len(prev.Tier1)),
		Tier2:       make(astopo.ASSet, len(prev.Tier2)),
		Clouds:      make(map[string]astopo.ASN, len(prev.Clouds)),
		Hypergiants: make(map[string]astopo.ASN, len(prev.Hypergiants)),
		IXPs:        ixps,
	}
	for a := range prev.Tier1 {
		in.Tier1.Add(a)
	}
	for a := range prev.Tier2 {
		in.Tier2.Add(a)
	}
	for n, a := range prev.Clouds {
		in.Clouds[n] = a
	}
	for n, a := range prev.Hypergiants {
		in.Hypergiants[n] = a
	}
	in.Meta = NewASMeta(g, class, name, home, pops)
	return in, nil
}

// GenerateYear builds the timeline world for one year: the 2015 base
// preset evolved forward one growth step at a time. Deterministic — and
// because every step routes through ApplyDelta, a world produced by
// applying a stored delta to year N is byte-identical to GenerateYear of
// year N+1.
func GenerateYear(year int, scale float64) (*Internet, error) {
	if year < TimelineFirstYear || year > TimelineLastYear {
		return nil, fmt.Errorf("topogen: year %d outside timeline range %d..%d",
			year, TimelineFirstYear, TimelineLastYear)
	}
	in, err := Generate(Internet2015(scale))
	if err != nil {
		return nil, err
	}
	for y := TimelineFirstYear + 1; y <= year; y++ {
		d, err := EvolveStep(in, y, scale)
		if err != nil {
			return nil, err
		}
		in, err = ApplyDelta(in, d)
		if err != nil {
			return nil, err
		}
	}
	return in, nil
}
