package topogen_test

import (
	"reflect"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/cluster"
	"flatnet/internal/topogen"
)

// timelineTestScale keeps the fold fast while leaving every class and
// growth mechanism populated (hundreds of ASes, all 45+ IXPs).
const timelineTestScale = 0.012

func worldHash(in *topogen.Internet) string {
	return cluster.DatasetHash(in.Graph, in.Tier1, in.Tier2)
}

func TestSpecForYearAnchorsMatchPresets(t *testing.T) {
	for _, scale := range []float64{0.012, 0.04987, 1.0} {
		got2015, err := topogen.SpecForYear(2015, scale)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got2015, topogen.Internet2015(scale)) {
			t.Errorf("scale %v: SpecForYear(2015) differs from Internet2015", scale)
		}
		got2020, err := topogen.SpecForYear(2020, scale)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got2020, topogen.Internet2020(scale)) {
			t.Errorf("scale %v: SpecForYear(2020) differs from Internet2020", scale)
		}
	}
}

func TestSpecForYearCurves(t *testing.T) {
	// Interpolation and extrapolation anchors: AS count, IXP count,
	// content fraction, and the seed schedule.
	sp2025, err := topogen.SpecForYear(2025, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if sp2025.NumASes != 87175 {
		t.Errorf("2025 NumASes = %d, want 87175", sp2025.NumASes)
	}
	if sp2025.NumIXPs != 75 {
		t.Errorf("2025 NumIXPs = %d, want 75", sp2025.NumIXPs)
	}
	if got := sp2025.FracContent; got < 0.1499 || got > 0.1501 {
		t.Errorf("2025 FracContent = %v, want 0.15", got)
	}
	if sp2025.Seed != 20250901 {
		t.Errorf("2025 Seed = %d, want 20250901", sp2025.Seed)
	}
	prevASes, prevIXPs := 0, 0
	for y := 2015; y <= 2025; y++ {
		sp, err := topogen.SpecForYear(y, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if sp.NumASes <= prevASes || sp.NumIXPs <= prevIXPs {
			t.Errorf("year %d: growth curves must be strictly increasing (ASes %d<=%d or IXPs %d<=%d)",
				y, sp.NumASes, prevASes, sp.NumIXPs, prevIXPs)
		}
		prevASes, prevIXPs = sp.NumASes, sp.NumIXPs
	}
	if _, err := topogen.SpecForYear(2014, 1.0); err == nil {
		t.Error("SpecForYear(2014) should fail")
	}
	if _, err := topogen.SpecForYear(2026, 1.0); err == nil {
		t.Error("SpecForYear(2026) should fail")
	}
}

func TestCloudPeeringCurvesGrow(t *testing.T) {
	// Microsoft's flattening (PeerTransit 0.22 -> 0.74) is the paper's
	// headline trend; the interpolated years must walk it monotonically.
	prev := -1.0
	for y := 2015; y <= 2025; y++ {
		sp, err := topogen.SpecForYear(y, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		var ms topogen.Profile
		for _, p := range sp.Clouds {
			if p.Name == "Microsoft" {
				ms = p
			}
		}
		if ms.PeerTransit < prev {
			t.Errorf("year %d: Microsoft PeerTransit %v below previous year %v", y, ms.PeerTransit, prev)
		}
		prev = ms.PeerTransit
	}
}

func TestEvolveStepDeterministic(t *testing.T) {
	base, err := topogen.GenerateYear(2016, timelineTestScale)
	if err != nil {
		t.Fatal(err)
	}
	d1, err := topogen.EvolveStep(base, 2017, timelineTestScale)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := topogen.EvolveStep(base, 2017, timelineTestScale)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d2) {
		t.Fatal("EvolveStep is not deterministic: two runs over the same base world differ")
	}
	// The same delta must also fall out when the base world was built by
	// an independent fold.
	base2, err := topogen.GenerateYear(2016, timelineTestScale)
	if err != nil {
		t.Fatal(err)
	}
	d3, err := topogen.EvolveStep(base2, 2017, timelineTestScale)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1, d3) {
		t.Fatal("EvolveStep differs across independently generated (equal) base worlds")
	}
}

// TestAdjacentYearsByteIdentical is the tentpole equivalence: for every
// adjacent year pair, applying the stored delta to year N reproduces the
// freshly generated year N+1 world exactly — same world hash, same link
// list, same annotations.
func TestAdjacentYearsByteIdentical(t *testing.T) {
	in, err := topogen.GenerateYear(2015, timelineTestScale)
	if err != nil {
		t.Fatal(err)
	}
	for y := 2016; y <= 2025; y++ {
		d, err := topogen.EvolveStep(in, y, timelineTestScale)
		if err != nil {
			t.Fatalf("year %d: %v", y, err)
		}
		evolved, err := topogen.ApplyDelta(in, d)
		if err != nil {
			t.Fatalf("year %d: %v", y, err)
		}
		fresh, err := topogen.GenerateYear(y, timelineTestScale)
		if err != nil {
			t.Fatalf("year %d: %v", y, err)
		}
		if gh, fh := worldHash(evolved), worldHash(fresh); gh != fh {
			t.Fatalf("year %d: evolved world hash %s != fresh %s", y, gh[:16], fh[:16])
		}
		if !reflect.DeepEqual(evolved.Graph.Links(), fresh.Graph.Links()) {
			t.Fatalf("year %d: evolved link list differs from fresh", y)
		}
		if !reflect.DeepEqual(evolved.Meta, fresh.Meta) {
			t.Fatalf("year %d: evolved annotations differ from fresh", y)
		}
		if !reflect.DeepEqual(evolved.IXPs, fresh.IXPs) {
			t.Fatalf("year %d: evolved IXPs differ from fresh", y)
		}
		if !reflect.DeepEqual(evolved.Spec, fresh.Spec) {
			t.Fatalf("year %d: evolved spec differs from fresh", y)
		}
		in = evolved
	}
}

// TestTimelineWorldsAuditClean: every evolved year remains a structurally
// sound topology — no provider cycles, no islands, clique intact, every
// new AS reachable through at least one provider.
func TestTimelineWorldsAuditClean(t *testing.T) {
	for _, y := range []int{2016, 2018, 2021, 2025} {
		in, err := topogen.GenerateYear(y, timelineTestScale)
		if err != nil {
			t.Fatalf("year %d: %v", y, err)
		}
		if issues := astopo.Audit(in.Graph); len(issues) != 0 {
			t.Errorf("year %d: audit found %d issues, first: %+v", y, len(issues), issues[0])
		}
		wantIXPs := 45 + 3*(y-2015)
		if len(in.IXPs) != wantIXPs {
			t.Errorf("year %d: %d IXPs, want %d", y, len(in.IXPs), wantIXPs)
		}
		sp, _ := topogen.SpecForYear(y, timelineTestScale)
		if in.Graph.NumASes() != sp.NumASes {
			t.Errorf("year %d: %d ASes, want %d", y, in.Graph.NumASes(), sp.NumASes)
		}
	}
}

func TestGenerateYearMatchesBasePreset(t *testing.T) {
	in, err := topogen.GenerateYear(2015, timelineTestScale)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := topogen.Generate(topogen.Internet2015(timelineTestScale))
	if err != nil {
		t.Fatal(err)
	}
	if worldHash(in) != worldHash(direct) {
		t.Fatal("GenerateYear(2015) differs from the 2015 preset world")
	}
}

func TestApplyDeltaFailsClosed(t *testing.T) {
	base, err := topogen.GenerateYear(2016, timelineTestScale)
	if err != nil {
		t.Fatal(err)
	}
	good, err := topogen.EvolveStep(base, 2017, timelineTestScale)
	if err != nil {
		t.Fatal(err)
	}

	copyDelta := func() *topogen.GrowthDelta {
		d := *good
		d.RemovedLinks = append([]astopo.Link(nil), good.RemovedLinks...)
		d.AddedLinks = append([]astopo.Link(nil), good.AddedLinks...)
		d.IXPJoins = append([]topogen.IXPJoin(nil), good.IXPJoins...)
		return &d
	}

	t.Run("wrong base year", func(t *testing.T) {
		d := copyDelta()
		d.FromYear, d.ToYear = 2017, 2018
		if _, err := topogen.ApplyDelta(base, d); err == nil {
			t.Fatal("want error for mispaired delta")
		}
	})
	t.Run("removal not in base", func(t *testing.T) {
		d := copyDelta()
		d.RemovedLinks = append(d.RemovedLinks, astopo.Link{A: 1, B: 2, Rel: astopo.P2P})
		if _, err := topogen.ApplyDelta(base, d); err == nil {
			t.Fatal("want error for unmatched removal")
		}
	})
	t.Run("duplicate addition", func(t *testing.T) {
		d := copyDelta()
		d.AddedLinks = append(d.AddedLinks, base.Graph.Links()[0])
		if _, err := topogen.ApplyDelta(base, d); err == nil {
			t.Fatal("want error for addition that already exists")
		}
	})
	t.Run("IXP index out of range", func(t *testing.T) {
		d := copyDelta()
		d.IXPJoins = append(d.IXPJoins, topogen.IXPJoin{IXP: int32(len(base.IXPs)), Member: 15169})
		if _, err := topogen.ApplyDelta(base, d); err == nil {
			t.Fatal("want error for out-of-range IXP join")
		}
	})
	t.Run("good delta still applies", func(t *testing.T) {
		if _, err := topogen.ApplyDelta(base, good); err != nil {
			t.Fatalf("unmodified delta should apply: %v", err)
		}
	})
}
