package tracesim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
)

// This file reads and writes traceroutes in a scamper-compatible JSON
// lines format (`scamper -O json` style): one object per line with the
// destination, stop reason, and per-hop records keyed by probe TTL.
// Unresponsive TTLs carry no hop record, exactly as scamper emits them.
//
// The wire format intentionally has no ground-truth fields (TrueAS,
// TruePath, OnBestPath): a corpus that round-trips through JSON is what a
// real measurement pipeline would see, which the neighbor-inference tests
// exploit to prove the pipeline works from observable data alone.

// jsonTrace mirrors the scamper JSON schema subset we use.
type jsonTrace struct {
	Type       string    `json:"type"`
	Version    string    `json:"version"`
	Method     string    `json:"method"`
	Monitor    string    `json:"monitor,omitempty"` // extension: VM's cloud
	Src        string    `json:"src,omitempty"`
	Dst        string    `json:"dst"`
	StopReason string    `json:"stop_reason"`
	HopCount   int       `json:"hop_count"`
	Hops       []jsonHop `json:"hops"`
}

type jsonHop struct {
	Addr     string `json:"addr"`
	ProbeTTL int    `json:"probe_ttl"`
}

// WriteJSON emits the traceroutes as JSON lines.
func WriteJSON(w io.Writer, traces []Traceroute) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range traces {
		tr := &traces[i]
		jt := jsonTrace{
			Type:     "trace",
			Version:  "0.1",
			Method:   "icmp-echo",
			Monitor:  tr.VM.Cloud,
			HopCount: len(tr.Hops),
		}
		if tr.Dst.IsValid() {
			jt.Dst = tr.Dst.String()
		}
		if tr.Reached {
			jt.StopReason = "COMPLETED"
		} else {
			jt.StopReason = "GAPLIMIT"
		}
		for _, h := range tr.Hops {
			if !h.Responded() {
				continue // scamper omits silent TTLs
			}
			jt.Hops = append(jt.Hops, jsonHop{Addr: h.Addr.String(), ProbeTTL: h.TTL})
		}
		if err := enc.Encode(&jt); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSON parses JSON-lines traceroutes back into Traceroute values. The
// ground-truth fields are necessarily absent (zero); unresponsive TTLs are
// reconstructed as hops with no address.
func ReadJSON(r io.Reader) ([]Traceroute, error) {
	dec := json.NewDecoder(r)
	var out []Traceroute
	for dec.More() {
		var jt jsonTrace
		if err := dec.Decode(&jt); err != nil {
			return nil, fmt.Errorf("tracesim: decoding trace %d: %w", len(out), err)
		}
		if jt.Type != "trace" {
			continue
		}
		tr := Traceroute{
			VM:      VM{Cloud: jt.Monitor},
			Reached: jt.StopReason == "COMPLETED",
		}
		if jt.Dst != "" {
			a, err := netip.ParseAddr(jt.Dst)
			if err != nil {
				return nil, fmt.Errorf("tracesim: trace %d: bad dst %q", len(out), jt.Dst)
			}
			tr.Dst = a
		}
		tr.Hops = make([]Hop, jt.HopCount)
		for i := range tr.Hops {
			tr.Hops[i].TTL = i + 1
		}
		for _, h := range jt.Hops {
			if h.ProbeTTL < 1 || h.ProbeTTL > jt.HopCount {
				return nil, fmt.Errorf("tracesim: trace %d: hop TTL %d outside 1..%d",
					len(out), h.ProbeTTL, jt.HopCount)
			}
			a, err := netip.ParseAddr(h.Addr)
			if err != nil {
				return nil, fmt.Errorf("tracesim: trace %d: bad hop addr %q", len(out), h.Addr)
			}
			tr.Hops[h.ProbeTTL-1].Addr = a
		}
		out = append(out, tr)
	}
	return out, nil
}
