package tracesim

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	e := newEngine(t, 0.01425)
	vms, err := e.VMs("Google", 2)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := e.TraceAll(vms)
	if err != nil {
		t.Fatal(err)
	}
	flat := append(append([]Traceroute{}, traces[0][:200]...), traces[1][:200]...)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, flat); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(flat) {
		t.Fatalf("round trip count %d, want %d", len(back), len(flat))
	}
	for i := range flat {
		a, b := &flat[i], &back[i]
		if a.Reached != b.Reached || a.Dst != b.Dst || len(a.Hops) != len(b.Hops) {
			t.Fatalf("trace %d metadata changed: %+v vs %+v", i, a, b)
		}
		if b.VM.Cloud != "Google" {
			t.Fatalf("trace %d lost monitor", i)
		}
		for h := range a.Hops {
			if a.Hops[h].Addr != b.Hops[h].Addr || a.Hops[h].TTL != b.Hops[h].TTL {
				t.Fatalf("trace %d hop %d changed", i, h)
			}
		}
		// Ground truth must NOT survive the wire format.
		if b.TruePath != nil || b.OnBestPath || b.DstASN != 0 {
			t.Fatal("ground-truth fields leaked into the JSON format")
		}
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		`{"type":"trace","dst":"not-an-ip","hop_count":0,"hops":[]}`,
		`{"type":"trace","dst":"10.0.0.1","hop_count":1,"hops":[{"addr":"x","probe_ttl":1}]}`,
		`{"type":"trace","dst":"10.0.0.1","hop_count":1,"hops":[{"addr":"10.0.0.2","probe_ttl":5}]}`,
		`{not json`,
	}
	for _, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
	// Non-trace objects are skipped.
	out, err := ReadJSON(strings.NewReader(`{"type":"cycle-start"}` + "\n"))
	if err != nil || len(out) != 0 {
		t.Errorf("non-trace object: %v, %v", out, err)
	}
}

func TestJSONPreservesUnresponsiveGaps(t *testing.T) {
	in := `{"type":"trace","dst":"10.0.0.1","stop_reason":"GAPLIMIT","hop_count":3,"hops":[{"addr":"10.0.0.2","probe_ttl":1},{"addr":"10.0.0.3","probe_ttl":3}]}`
	out, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	tr := out[0]
	if len(tr.Hops) != 3 {
		t.Fatalf("hops = %d", len(tr.Hops))
	}
	if !tr.Hops[0].Responded() || tr.Hops[1].Responded() || !tr.Hops[2].Responded() {
		t.Errorf("gap not reconstructed: %+v", tr.Hops)
	}
	if tr.Reached {
		t.Error("GAPLIMIT marked as reached")
	}
}
