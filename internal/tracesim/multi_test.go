package tracesim

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
)

// TraceAllMulti shares one propagation per destination across every VM set;
// its output must be identical to the serial reference, trace for trace.
func TestTraceAllMultiMatchesSerial(t *testing.T) {
	e := newEngine(t, 0.01425)
	clouds := []string{"Google", "Amazon", "Microsoft", "IBM"}
	sets := make([][]VM, len(clouds))
	for i, c := range clouds {
		vms, err := e.VMs(c, 3)
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = vms
	}
	multi, err := e.TraceAllMulti(sets)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range clouds {
		serial, err := e.TraceAllSerial(sets[i])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(multi[i], serial) {
			t.Fatalf("cloud %s: TraceAllMulti differs from TraceAllSerial", c)
		}
	}
}

// TraceAll is now a one-set TraceAllMulti; it must still equal the serial
// reference byte for byte.
func TestTraceAllMatchesSerial(t *testing.T) {
	e := newEngine(t, 0.01425)
	vms, err := e.VMs("Amazon", 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.TraceAll(vms)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.TraceAllSerial(vms)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("TraceAll differs from TraceAllSerial")
	}
}

// forwardPath folds the Appendix A containment verdict into the DAG walk;
// it must agree with the reference onBestPath predicate for every trace.
func TestOnBestPathVerdictMatchesReference(t *testing.T) {
	e := newEngine(t, 0.01425)
	vms, err := e.VMs("Amazon", 2)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := e.TraceAll(vms)
	if err != nil {
		t.Fatal(err)
	}
	g := e.in.Graph
	sim := bgpsim.New(g)
	checked := 0
	for _, perVM := range traces {
		for _, tr := range perVM {
			if tr.TruePath == nil {
				continue
			}
			res, err := sim.Run(bgpsim.Config{Origin: tr.DstASN, TrackNextHops: true})
			if err != nil {
				t.Fatal(err)
			}
			if want := e.onBestPath(tr.TruePath, res); tr.OnBestPath != want {
				t.Fatalf("VM %v dst AS%d: OnBestPath=%v, reference says %v",
					tr.VM, tr.DstASN, tr.OnBestPath, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no traces with paths to check")
	}
}

// pathHasher was rewritten without fmt/hash.Hash; the digest must stay
// byte-for-byte identical to the original formulation, since every
// synthesized hop sequence is derived from it.
func TestPathHasherMatchesReference(t *testing.T) {
	ref := func(vm VM, dst astopo.ASN) uint64 {
		f := fnv.New64a()
		fmt.Fprintf(f, "%s/%d/%d", vm.Cloud, vm.City, dst)
		if vm.Cloud == "Amazon" {
			fmt.Fprintf(f, "/%d", vm.Index)
		}
		return f.Sum64()
	}
	cases := []VM{
		{Cloud: "Google", City: 0, Index: 0},
		{Cloud: "Google", City: 117, Index: 3},
		{Cloud: "Amazon", City: 42, Index: 0},
		{Cloud: "Amazon", City: 42, Index: 19},
		{Cloud: "Microsoft", City: 5, Index: 1},
		{Cloud: "IBM", City: 200, Index: 5},
	}
	for _, vm := range cases {
		for _, dst := range []astopo.ASN{1, 15169, 4294967295, 90210} {
			if got, want := pathHasher(vm, dst), ref(vm, dst); got != want {
				t.Fatalf("pathHasher(%+v, %d) = %#x, reference %#x", vm, dst, got, want)
			}
		}
	}
}
