// Package tracesim simulates the paper's measurement campaign (§4.1): ICMP
// traceroutes issued from VMs inside each cloud provider toward every
// routable prefix, over the synthetic address plan of package netdb.
//
// The engine computes the ground-truth AS-level forwarding path with the
// route simulator (package bgpsim), then synthesizes router-level hops with
// the artifacts that drive the paper's §5 inference-accuracy story:
//
//   - border interfaces numbered from the far side's space (third-party
//     addresses), from IXP LANs (unresolvable by prefix matching), or from
//     the provider's space on p2c links;
//   - unresponsive hops (probabilistic per hop);
//   - rate-limited, truncated traceroutes;
//   - destination networks that never answer (enterprise filtering);
//   - per-VM path diversity: VMs in different cities take different
//     tied-best paths, and Amazon's early-exit routing adds per-VM
//     variance on top (§5's "more locations, more peers, more noise").
//
// The per-destination propagation depends only on the destination, never on
// the vantage point, so TraceAllMulti shares one tracked propagation per
// destination across every cloud's VM set — the paper's four campaigns cost
// one propagation sweep instead of four. TraceAllSerial preserves the
// original one-cloud-at-a-time reference implementation (also reachable via
// FLATNET_SERIAL_TRACES=1) as the baseline the cold-start benchmark
// compares against.
package tracesim

import (
	"fmt"
	"net/netip"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"

	"flatnet/internal/astopo"
	"flatnet/internal/bgpsim"
	"flatnet/internal/geo"
	"flatnet/internal/netdb"
	"flatnet/internal/par"
	"flatnet/internal/topogen"
)

// VM is one measurement vantage point inside a cloud.
type VM struct {
	Cloud    string
	CloudASN astopo.ASN
	City     geo.CityID
	Index    int
}

// Hop is one traceroute line. A zero Addr means no reply at that TTL.
type Hop struct {
	TTL  int
	Addr netip.Addr
	// TrueAS is ground truth for validation; inference code must not
	// read it.
	TrueAS astopo.ASN
}

// Responded reports whether the hop replied.
func (h Hop) Responded() bool { return h.Addr.IsValid() }

// Traceroute is one measurement.
type Traceroute struct {
	VM      VM
	Dst     netip.Addr
	DstASN  astopo.ASN
	Hops    []Hop
	Reached bool
	// TruePath is the ground-truth AS-level path from the cloud to the
	// destination (cloud first).
	TruePath []astopo.ASN
	// OnBestPath reports whether TruePath is one of the tied-best
	// simulated paths — Appendix A's containment check. Traffic-
	// engineering fallbacks (locality horizons, Amazon's early exit)
	// produce traced paths outside the tied-best set.
	OnBestPath bool
}

// Options tune the artifact rates.
type Options struct {
	Seed int64
	// UnresponsiveProb is the per-hop probability of no reply.
	UnresponsiveProb float64
	// TruncateProb is the probability a traceroute is cut short by rate
	// limiting after a random hop.
	TruncateProb float64
	// EnterpriseDropProb is the probability an enterprise destination
	// filters ICMP entirely (the trace never reaches it).
	EnterpriseDropProb float64
}

// DefaultOptions match the artifact levels the paper's §5 numbers imply.
func DefaultOptions(seed int64) Options {
	return Options{
		Seed:               seed,
		UnresponsiveProb:   0.06,
		TruncateProb:       0.02,
		EnterpriseDropProb: 0.35,
	}
}

// Engine issues simulated traceroutes over one address plan. An Engine is
// safe for concurrent use once built; the per-VM-city distance rows it
// caches are published copy-on-write.
type Engine struct {
	plan   *netdb.Plan
	in     *topogen.Internet
	opts   Options
	serial bool

	// dist caches, per VM city, the distance from that city to every AS's
	// home city, indexed by dense graph index. Rows are immutable once
	// published; the map is swapped atomically so the synthesis hot path
	// reads it without locking.
	distMu sync.Mutex
	dist   atomic.Pointer[map[geo.CityID][]float64]
}

// New returns an Engine. FLATNET_SERIAL_TRACES=1 pins TraceAll and
// TraceAllMulti to the serial reference implementation.
func New(plan *netdb.Plan, opts Options) *Engine {
	return &Engine{
		plan:   plan,
		in:     plan.Internet(),
		opts:   opts,
		serial: os.Getenv("FLATNET_SERIAL_TRACES") == "1",
	}
}

// paperVMCounts are the per-cloud VM deployments of §4.1.
var paperVMCounts = map[string]int{
	"Google":    12,
	"Amazon":    20,
	"Microsoft": 11,
	"IBM":       6,
}

// VMs returns up to n vantage points for a cloud, one per PoP city in
// deployment order. n <= 0 selects the paper's §4.1 count for that cloud.
func (e *Engine) VMs(cloud string, n int) ([]VM, error) {
	asn, ok := e.in.Clouds[cloud]
	if !ok {
		return nil, fmt.Errorf("tracesim: unknown cloud %q", cloud)
	}
	if n <= 0 {
		n = paperVMCounts[cloud]
		if n == 0 {
			n = 8
		}
	}
	pops := e.in.PoPsOf(asn)
	if len(pops) == 0 {
		return nil, fmt.Errorf("tracesim: cloud %q has no PoPs", cloud)
	}
	if n > len(pops) {
		n = len(pops)
	}
	vms := make([]VM, n)
	for i := 0; i < n; i++ {
		vms[i] = VM{Cloud: cloud, CloudASN: asn, City: pops[i], Index: i}
	}
	return vms, nil
}

// TraceAll issues one traceroute from every VM to one address in every AS's
// announced space (the paper's "every routable prefix", §4.1). The result
// is grouped per VM in input order.
func (e *Engine) TraceAll(vms []VM) ([][]Traceroute, error) {
	all, err := e.TraceAllMulti([][]VM{vms})
	if err != nil {
		return nil, err
	}
	return all[0], nil
}

// TraceAllMulti runs TraceAll for several VM sets at once, sharing one
// tracked propagation per destination across all of them: the propagation
// depends only on the destination, so synthesizing four clouds' campaigns
// together costs one sweep instead of four. Results are indexed
// [set][vm][destination] and are identical to per-set TraceAll calls.
func (e *Engine) TraceAllMulti(vmSets [][]VM) ([][][]Traceroute, error) {
	if e.serial {
		out := make([][][]Traceroute, len(vmSets))
		for si, vms := range vmSets {
			tr, err := e.TraceAllSerial(vms)
			if err != nil {
				return nil, err
			}
			out[si] = tr
		}
		return out, nil
	}
	g := e.in.Graph
	g.Freeze()
	dests := g.ASes()
	out := make([][][]Traceroute, len(vmSets))
	for si, vms := range vmSets {
		out[si] = make([][]Traceroute, len(vms))
		for vi := range vms {
			out[si][vi] = make([]Traceroute, len(dests))
		}
	}
	// Build the per-city distance rows up front so the parallel section
	// reads them lock-free.
	for _, vms := range vmSets {
		for _, vm := range vms {
			e.cityRow(vm.City)
		}
	}
	err := par.For(runtime.GOMAXPROCS(0), len(dests), func(w int) func(i int) error {
		sim := bgpsim.New(g)
		return func(di int) error {
			d := dests[di]
			res, err := sim.RunShared(bgpsim.Config{Origin: d, TrackNextHops: true})
			if err != nil {
				return err
			}
			for si, vms := range vmSets {
				for vi, vm := range vms {
					out[si][vi][di] = e.trace(vm, d, res)
				}
			}
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TraceAllSerial is the reference implementation TraceAllMulti is measured
// against: one propagation per destination per call, single-threaded, no
// distance caching. Its output is identical to TraceAll's.
func (e *Engine) TraceAllSerial(vms []VM) ([][]Traceroute, error) {
	g := e.in.Graph
	g.Freeze()
	dests := g.ASes()
	out := make([][]Traceroute, len(vms))
	for i := range out {
		out[i] = make([]Traceroute, len(dests))
	}
	sim := bgpsim.New(g)
	for di, d := range dests {
		res, err := sim.Run(bgpsim.Config{Origin: d, TrackNextHops: true})
		if err != nil {
			return nil, err
		}
		for vi, vm := range vms {
			out[vi][di] = e.trace(vm, d, res)
		}
	}
	return out, nil
}

// cityRow returns the cached distance row for a VM city, building and
// publishing it (copy-on-write) on first use.
func (e *Engine) cityRow(city geo.CityID) []float64 {
	if m := e.dist.Load(); m != nil {
		if row, ok := (*m)[city]; ok {
			return row
		}
	}
	e.distMu.Lock()
	defer e.distMu.Unlock()
	old := e.dist.Load()
	if old != nil {
		if row, ok := (*old)[city]; ok {
			return row
		}
	}
	g := e.in.Graph
	g.Freeze()
	n := g.NumASes()
	row := make([]float64, n)
	for i := 0; i < n; i++ {
		row[i] = geo.CityDistanceKm(city, e.in.HomeCityAt(i))
	}
	next := make(map[geo.CityID][]float64, 8)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[city] = row
	e.dist.Store(&next)
	return row
}

// trace synthesizes one traceroute given the propagation result for the
// destination.
func (e *Engine) trace(vm VM, dst astopo.ASN, res *bgpsim.Result) Traceroute {
	tr := Traceroute{VM: vm, DstASN: dst}
	if pfx, ok := e.plan.ASPrefix[dst]; ok {
		tr.Dst = pfx.Addr().Next()
	}
	h := pathHasher(vm, dst)
	path, onBest := e.forwardPath(vm, dst, res, h)
	tr.TruePath = path
	if path == nil {
		return tr
	}
	tr.OnBestPath = onBest
	rnd := func(mod uint64) uint64 { h = h*6364136223846793005 + 1442695040888963407; return (h >> 33) % mod }
	chance := func(p float64) bool { return float64(rnd(1_000_000)) < p*1_000_000 }

	ttl := 0
	tr.Hops = make([]Hop, 0, 4+2*len(path))
	emit := func(addr netip.Addr, owner astopo.ASN) {
		ttl++
		hop := Hop{TTL: ttl, TrueAS: owner}
		if addr.IsValid() && !chance(e.opts.UnresponsiveProb) {
			hop.Addr = addr
		}
		tr.Hops = append(tr.Hops, hop)
	}

	truncated := chance(e.opts.TruncateProb)
	truncAt := 3 + int(rnd(8))

	// Internal cloud hops from the VM's site.
	ninternal := 2 + int(rnd(2))
	for j := 0; j < ninternal; j++ {
		addr, _ := e.plan.InternalAddr(vm.CloudASN, vm.Index*16+j)
		emit(addr, vm.CloudASN)
	}

	for k := 1; k < len(path); k++ {
		if truncated && ttl >= truncAt {
			return tr
		}
		prev, cur := path[k-1], path[k]
		// The hop entering `cur` usually replies with cur's interface
		// on the prev-cur link subnet — which may be numbered from
		// prev's space or an IXP LAN. Some routers instead reply with
		// their *outgoing* interface toward the next AS (the classic
		// third-party-address artifact), which lands on yet another
		// subnet — frequently an exchange LAN.
		_, curSide, ok := e.plan.LinkAddr(prev, cur)
		if !ok {
			curSide = netip.Addr{}
		}
		if k+1 < len(path) && chance(thirdPartyProb) {
			if out, _, ok2 := e.plan.LinkAddr(cur, path[k+1]); ok2 {
				curSide = out
			}
		}
		emit(curSide, cur)
		if cur == dst {
			if e.in.ClassOf(dst) == topogen.ClassEnterprise && chance(e.opts.EnterpriseDropProb) {
				return tr // destination filters ICMP
			}
			emit(tr.Dst, dst)
			tr.Reached = true
			return tr
		}
		// Internal hops inside cur.
		n := int(rnd(3))
		for j := 0; j < n; j++ {
			addr, _ := e.plan.InternalAddr(cur, 64+j)
			emit(addr, cur)
		}
	}
	return tr
}

// forwardPath walks the tied-best next-hop DAG from the cloud toward the
// destination, breaking ties deterministically. VMs in different cities
// land on different tied paths; Amazon's early-exit default adds per-VM
// index variance (§4.1, Appendix A). h must be pathHasher(vm, dst).
//
// Every step after the first follows a tied-best next hop by construction,
// so the Appendix A containment verdict (onBest) reduces to whether the
// chosen first hop is one of the cloud's tied-best next hops.
func (e *Engine) forwardPath(vm VM, dst astopo.ASN, res *bgpsim.Result, h uint64) (path []astopo.ASN, onBest bool) {
	g := e.in.Graph
	ci, ok := g.Index(vm.CloudASN)
	if !ok || res.Class[ci] == bgpsim.ClassNone {
		return nil, false
	}
	if vm.CloudASN == dst {
		return []astopo.ASN{dst}, true
	}
	oi, _ := g.Index(dst)
	first, ok := e.firstHop(vm, res, int32(ci), int32(oi))
	if !ok {
		return nil, false
	}
	onBest = false
	for _, nh := range res.NextHops[ci] {
		if nh == first {
			onBest = true
			break
		}
	}
	path = make([]astopo.ASN, 2, 8)
	path[0], path[1] = vm.CloudASN, g.ASNAt(int(first))
	cur := first
	for cur != int32(oi) {
		hops := res.NextHops[cur]
		if len(hops) == 0 {
			return nil, false
		}
		h = h*6364136223846793005 + 1442695040888963407
		cur = hops[(h>>33)%uint64(len(hops))]
		path = append(path, g.ASNAt(int(cur)))
		if len(path) > 64 {
			return nil, false // defensive: DAG walks cannot loop, but bound anyway
		}
	}
	return path, onBest
}

// regionalUseKm is how far from a regional peer's interconnection city a VM
// can be and still have the peering available; beyond it, the peer "only
// provides routes to a single PoP, far from cloud datacenters" (§5's
// false-negative explanation). Amazon's early-exit default makes its
// usable horizon much smaller.
const (
	regionalUseKm       = 3000.0
	amazonRegionalUseKm = 1500.0
)

// thirdPartyProb is the probability that a border router replies with its
// outgoing rather than ingress interface.
const thirdPartyProb = 0.30

// earlyExitSlackKm is how much closer a local exit must be before Amazon's
// early-exit routing abandons the WAN-wide best path.
const earlyExitSlackKm = 2500.0

// firstHop selects the neighbor the cloud hands traffic to for this VM and
// destination. Preference order:
//
//  1. a tied-best next hop that is usable from the VM's site (global
//     backbone neighbors always are; regional edge peers only within the
//     locality horizon) — nearest such neighbor wins;
//  2. otherwise, the nearest usable neighbor that exported *any* valid
//     route to the cloud (its providers always export; peers and customers
//     export customer-learned routes), i.e. hot-potato egress through the
//     backbone. These fallback paths are exactly the traffic-engineering
//     deviations that make some traced paths fall outside the tied-best
//     set (Appendix A's Amazon result).
func (e *Engine) firstHop(vm VM, res *bgpsim.Result, cloudIdx, dstIdx int32) (int32, bool) {
	if cloudIdx == dstIdx {
		return dstIdx, true
	}
	if res.Class[cloudIdx] == bgpsim.ClassNone {
		return 0, false
	}
	horizon := regionalUseKm
	if vm.Cloud == "Amazon" {
		horizon = amazonRegionalUseKm
	}
	usable := func(n int32) bool {
		if e.globalAS(n) {
			return true
		}
		return e.hopDistance(vm.City, n) <= horizon
	}
	g := e.in.Graph
	exported := func(n int32) bool {
		if !usable(n) {
			return false
		}
		switch res.Class[n] {
		case bgpsim.ClassOrigin, bgpsim.ClassCustomer:
			return true
		default:
			return false
		}
	}
	anyExporting := func() (int32, bool) {
		if best, ok := e.nearestWhere(vm.City, g.PeersOf(int(cloudIdx)), exported); ok {
			return best, true
		}
		if best, ok := e.nearestWhere(vm.City, g.CustomersOf(int(cloudIdx)), exported); ok {
			return best, true
		}
		// Providers export whatever they have.
		return e.nearestWhere(vm.City, g.ProvidersOf(int(cloudIdx)), func(n int32) bool {
			return res.Class[n] != bgpsim.ClassNone
		})
	}
	if vm.Cloud == "Amazon" {
		// Early exit: tenant traffic leaves at the closest exit; the
		// WAN-wide best next hop is used only when it is at least as
		// close as the nearest exporting neighbor. A directly usable
		// destination neighbor is always taken.
		if dstIsNeighbor(g, cloudIdx, dstIdx) && usable(dstIdx) {
			return dstIdx, true
		}
		bestHop, okBest := e.nearestWhere(vm.City, res.NextHops[cloudIdx], usable)
		exitHop, okExit := anyExporting()
		switch {
		case okBest && okExit:
			// Exit early only when the local exit is substantially
			// closer than the best-path egress; small differences
			// still ride the best path.
			if e.hopDistance(vm.City, bestHop)-e.hopDistance(vm.City, exitHop) > earlyExitSlackKm {
				return exitHop, true
			}
			return bestHop, true
		case okBest:
			return bestHop, true
		case okExit:
			return exitHop, true
		}
	}
	if best, ok := e.nearestWhere(vm.City, res.NextHops[cloudIdx], usable); ok {
		return best, true
	}
	if best, ok := anyExporting(); ok {
		return best, true
	}
	// Last resort: any tied-best next hop even if "unusable".
	if hops := res.NextHops[cloudIdx]; len(hops) > 0 {
		return hops[0], true
	}
	return 0, false
}

func dstIsNeighbor(g *astopo.Graph, cloudIdx, dstIdx int32) bool {
	for _, n := range g.PeersOf(int(cloudIdx)) {
		if n == dstIdx {
			return true
		}
	}
	for _, n := range g.CustomersOf(int(cloudIdx)) {
		if n == dstIdx {
			return true
		}
	}
	for _, n := range g.ProvidersOf(int(cloudIdx)) {
		if n == dstIdx {
			return true
		}
	}
	return false
}

func (e *Engine) globalAS(n int32) bool {
	switch e.in.ClassAt(int(n)) {
	case topogen.ClassTier1, topogen.ClassTier2, topogen.ClassTransit, topogen.ClassCloud:
		return true
	}
	return false
}

// nearestWhere picks the candidate passing the filter whose home city is
// closest to the VM's city (lowest dense index breaks exact ties).
func (e *Engine) nearestWhere(city geo.CityID, cands []int32, keep func(int32) bool) (int32, bool) {
	var best int32
	bestD := -1.0
	if m := e.dist.Load(); m != nil {
		if row, ok := (*m)[city]; ok {
			for _, c := range cands {
				if !keep(c) {
					continue
				}
				d := row[c]
				if bestD < 0 || d < bestD || (d == bestD && c < best) {
					best, bestD = c, d
				}
			}
			return best, bestD >= 0
		}
	}
	for _, c := range cands {
		if !keep(c) {
			continue
		}
		d := e.hopDistance(city, c)
		if bestD < 0 || d < bestD || (d == bestD && c < best) {
			best, bestD = c, d
		}
	}
	return best, bestD >= 0
}

func (e *Engine) hopDistance(city geo.CityID, hop int32) float64 {
	if m := e.dist.Load(); m != nil {
		if row, ok := (*m)[city]; ok {
			return row[hop]
		}
	}
	return geo.CityDistanceKm(city, e.in.HomeCityAt(int(hop)))
}

// onBestPath reports whether every step of the forwarding path follows a
// tied-best next hop of the destination's propagation. forwardPath computes
// the same verdict incrementally; this is the reference form kept for the
// equivalence test.
func (e *Engine) onBestPath(path []astopo.ASN, res *bgpsim.Result) bool {
	g := e.in.Graph
	for k := 1; k < len(path); k++ {
		ci, ok := g.Index(path[k-1])
		if !ok {
			return false
		}
		ni, ok := g.Index(path[k])
		if !ok {
			return false
		}
		found := false
		for _, h := range res.NextHops[ci] {
			if h == int32(ni) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// pathHasher seeds the per-(VM, destination) deterministic noise stream: an
// FNV-64a hash over "<cloud>/<city>/<dst>" (plus "/<index>" for Amazon,
// whose early exit makes same-site VMs vary). Hand-rolled over the
// fmt/hash.Hash formulation — byte-for-byte the same digest, zero
// allocations — because it runs twice per synthesized traceroute.
func pathHasher(vm VM, dst astopo.ASN) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(vm.Cloud); i++ {
		h = (h ^ uint64(vm.Cloud[i])) * prime64
	}
	h = (h ^ '/') * prime64
	var buf [20]byte
	for _, c := range strconv.AppendInt(buf[:0], int64(vm.City), 10) {
		h = (h ^ uint64(c)) * prime64
	}
	h = (h ^ '/') * prime64
	for _, c := range strconv.AppendUint(buf[:0], uint64(dst), 10) {
		h = (h ^ uint64(c)) * prime64
	}
	if vm.Cloud == "Amazon" {
		// Early exit: Amazon tenant traffic egresses near the VM, so
		// different VMs at the same site still vary.
		h = (h ^ '/') * prime64
		for _, c := range strconv.AppendInt(buf[:0], int64(vm.Index), 10) {
			h = (h ^ uint64(c)) * prime64
		}
	}
	return h
}
