package tracesim

import (
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/netdb"
	"flatnet/internal/topogen"
)

func newEngine(t testing.TB, scale float64) *Engine {
	t.Helper()
	in, err := topogen.Generate(topogen.Internet2020(scale))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := netdb.Build(in)
	if err != nil {
		t.Fatal(err)
	}
	return New(plan, DefaultOptions(42))
}

func TestVMs(t *testing.T) {
	e := newEngine(t, 0.01425)
	vms, err := e.VMs("Google", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != 12 {
		t.Errorf("Google default VMs = %d, want 12 (§4.1)", len(vms))
	}
	seen := map[int]bool{}
	for _, vm := range vms {
		if vm.CloudASN != 15169 || vm.Cloud != "Google" {
			t.Errorf("bad VM identity %+v", vm)
		}
		if seen[int(vm.City)] {
			t.Errorf("duplicate VM city %d", vm.City)
		}
		seen[int(vm.City)] = true
	}
	if _, err := e.VMs("NoSuchCloud", 1); err == nil {
		t.Error("unknown cloud accepted")
	}
	three, err := e.VMs("Amazon", 3)
	if err != nil || len(three) != 3 {
		t.Errorf("VMs(Amazon,3) = %d,%v", len(three), err)
	}
}

func TestTraceAllBasicInvariants(t *testing.T) {
	e := newEngine(t, 0.01425)
	vms, err := e.VMs("Google", 2)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := e.TraceAll(vms)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("got %d VM groups", len(traces))
	}
	g := e.in.Graph
	nReached, nTotal := 0, 0
	for vi, group := range traces {
		if len(group) != g.NumASes() {
			t.Fatalf("VM %d traced %d dests, want %d", vi, len(group), g.NumASes())
		}
		for _, tr := range group {
			nTotal++
			if tr.Reached {
				nReached++
			}
			if tr.TruePath != nil {
				if tr.TruePath[0] != vms[vi].CloudASN {
					t.Fatalf("TruePath starts at AS%d, want cloud", tr.TruePath[0])
				}
				if tr.TruePath[len(tr.TruePath)-1] != tr.DstASN {
					t.Fatalf("TruePath ends at AS%d, want AS%d", tr.TruePath[len(tr.TruePath)-1], tr.DstASN)
				}
				// Consecutive path ASes must be linked.
				for k := 1; k < len(tr.TruePath); k++ {
					if _, ok := g.HasLink(tr.TruePath[k-1], tr.TruePath[k]); !ok {
						t.Fatalf("TruePath hop AS%d-AS%d not linked", tr.TruePath[k-1], tr.TruePath[k])
					}
				}
			}
			// TTLs are strictly increasing from 1.
			for i, h := range tr.Hops {
				if h.TTL != i+1 {
					t.Fatalf("hop %d has TTL %d", i, h.TTL)
				}
			}
		}
	}
	if frac := float64(nReached) / float64(nTotal); frac < 0.6 {
		t.Errorf("only %.2f of traceroutes reached their destination", frac)
	}
}

func TestTraceGroundTruthConsistency(t *testing.T) {
	e := newEngine(t, 0.01425)
	vms, err := e.VMs("Microsoft", 1)
	if err != nil {
		t.Fatal(err)
	}
	traces, err := e.TraceAll(vms)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces[0] {
		if tr.TruePath == nil {
			continue
		}
		// Hops' TrueAS values must appear in TruePath order (with
		// repeats for internal hops).
		pos := 0
		for _, h := range tr.Hops {
			for pos < len(tr.TruePath) && tr.TruePath[pos] != h.TrueAS {
				pos++
			}
			if pos == len(tr.TruePath) {
				t.Fatalf("hop TrueAS AS%d not on TruePath %v", h.TrueAS, tr.TruePath)
			}
		}
	}
}

func TestTraceDeterminism(t *testing.T) {
	e1 := newEngine(t, 0.01425)
	e2 := newEngine(t, 0.01425)
	vms1, _ := e1.VMs("IBM", 2)
	vms2, _ := e2.VMs("IBM", 2)
	t1, err := e1.TraceAll(vms1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := e2.TraceAll(vms2)
	if err != nil {
		t.Fatal(err)
	}
	for vi := range t1 {
		for di := range t1[vi] {
			a, b := t1[vi][di], t2[vi][di]
			if len(a.Hops) != len(b.Hops) || a.Reached != b.Reached {
				t.Fatalf("nondeterministic trace vm=%d dest=%d", vi, di)
			}
			for h := range a.Hops {
				if a.Hops[h] != b.Hops[h] {
					t.Fatalf("hop mismatch vm=%d dest=%d hop=%d", vi, di, h)
				}
			}
		}
	}
}

// VM diversity: different VMs should uncover at least slightly different
// first-hop neighbor sets, and Amazon should show more per-VM variance
// than Google (early exit, §4.1).
func TestVMPathDiversity(t *testing.T) {
	e := newEngine(t, 0.02138)
	firstHops := func(cloud string, n int) []map[astopo.ASN]bool {
		vms, err := e.VMs(cloud, n)
		if err != nil {
			t.Fatal(err)
		}
		traces, err := e.TraceAll(vms)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]map[astopo.ASN]bool, len(traces))
		for vi, group := range traces {
			out[vi] = map[astopo.ASN]bool{}
			for _, tr := range group {
				if len(tr.TruePath) > 1 {
					out[vi][tr.TruePath[1]] = true
				}
			}
		}
		return out
	}
	union := func(sets []map[astopo.ASN]bool) int {
		u := map[astopo.ASN]bool{}
		for _, s := range sets {
			for a := range s {
				u[a] = true
			}
		}
		return len(u)
	}
	g1 := firstHops("Google", 1)
	g4 := firstHops("Google", 4)
	if union(g4) <= union(g1) {
		t.Errorf("4 Google VMs saw %d first-hop neighbors, 1 VM saw %d; want strictly more",
			union(g4), union(g1))
	}
}
