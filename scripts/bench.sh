#!/bin/sh
# Sweep-benchmark harness: runs the all-AS reachability benchmarks with
# repetition and writes a benchstat-ready text file, so the performance
# trajectory stays comparable across PRs:
#
#   ./scripts/bench.sh [out-file]          # default bench-<git-sha>.txt
#   benchstat bench-<old>.txt bench-<new>.txt
#
# FLATNET_BENCH_SCALE  (default 0.02138, ~1,485 ASes) benchmark topology size
# FLATNET_BENCH_COUNT  (default 6)     -count repetitions per benchmark
# FLATNET_BENCH_REGEX  (default: the sweep benches) -bench selector
#
# The regex also matches the FullScale variants (scale 1.0 pinned) and the
# BenchmarkSnapshotLoad mmap/decode pair, so the baseline always carries
# true-scale numbers and their ns/AS metrics.
set -eu

cd "$(dirname "$0")/.."

COUNT="${FLATNET_BENCH_COUNT:-6}"
REGEX="${FLATNET_BENCH_REGEX:-BenchmarkReachabilityAll|BenchmarkClassIndexBuild|BenchmarkTable1TopReachability|BenchmarkFig3ReachVsCone|BenchmarkSensitivity|BenchmarkHierarchyFreeReachability|BenchmarkFig7LeakCDFs|BenchmarkLeakTrialsBatch|BenchmarkEnvColdStart\$|BenchmarkEnvColdStartSerial|BenchmarkSnapshotLoad|BenchmarkClusterSweep|BenchmarkWireCounts|BenchmarkEvolveDelta|BenchmarkTimelineSeries}"
OUT="${1:-bench-$(git rev-parse --short HEAD 2>/dev/null || echo local).txt}"

go test -run '^$' -bench "$REGEX" -benchmem -count "$COUNT" . | tee "$OUT"
echo "wrote $OUT"
