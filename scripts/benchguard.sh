#!/bin/sh
# Benchmark regression gate: compares each benchmark's median ns/op in a
# fresh bench.sh run against the checked-in baseline and fails when any
# benchmark slows down beyond the tolerance. Pure sh+awk, so CI needs no
# tooling beyond the Go toolchain that produced the files.
#
#   ./scripts/benchguard.sh bench-baseline.txt bench-new.txt
#
# FLATNET_BENCH_TOLERANCE  (default 30)  allowed regression, percent
#
# Medians (not means) absorb the odd slow repetition on noisy CI runners;
# the -<GOMAXPROCS> name suffix is stripped so baselines recorded on one
# machine compare against runs on another.
set -eu

BASE="${1:?usage: benchguard.sh baseline.txt new.txt}"
NEW="${2:?usage: benchguard.sh baseline.txt new.txt}"
TOL="${FLATNET_BENCH_TOLERANCE:-30}"

[ -f "$BASE" ] || { echo "benchguard: baseline $BASE not found" >&2; exit 1; }
[ -f "$NEW" ] || { echo "benchguard: new results $NEW not found" >&2; exit 1; }

awk -v tol="$TOL" '
function median(v, name, n,    i, j, t, a) {
    for (i = 1; i <= n; i++) a[i] = v[name "," i]
    for (i = 2; i <= n; i++) {
        t = a[i]
        for (j = i - 1; j >= 1 && a[j] > t; j--) a[j + 1] = a[j]
        a[j + 1] = t
    }
    if (n % 2) return a[(n + 1) / 2]
    return (a[n / 2] + a[n / 2 + 1]) / 2
}
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)
    if (NR == FNR) { bn[name]++; bv[name "," bn[name]] = $3 }
    else           { nn[name]++; nv[name "," nn[name]] = $3 }
    # The headline benchmarks also report a scale-normalized ns/AS metric;
    # track it with the same tolerance so per-AS cost stays flat even when
    # the benchmark topology size changes between baselines. allocs/op gets
    # the same treatment: the hot paths are designed around zero or fixed
    # allocation counts, so growth there is a real structural regression.
    for (i = 5; i <= NF; i++) {
        if ($i == "ns/AS") {
            if (NR == FNR) { ban[name]++; bav[name "," ban[name]] = $(i-1) }
            else           { nan[name]++; nav[name "," nan[name]] = $(i-1) }
        }
        if ($i == "allocs/op") {
            if (NR == FNR) { bln[name]++; blv[name "," bln[name]] = $(i-1) }
            else           { nln[name]++; nlv[name "," nln[name]] = $(i-1) }
        }
        if ($i == "B/op") {
            if (NR == FNR) { bbn[name]++; bbv[name "," bbn[name]] = $(i-1) }
            else           { nbn[name]++; nbv[name "," nbn[name]] = $(i-1) }
        }
    }
}
END {
    fail = 0
    compared = 0
    for (name in nn) {
        if (!(name in bn)) {
            printf "%-55s (new benchmark, no baseline)\n", name
            continue
        }
        bm = median(bv, name, bn[name])
        nm = median(nv, name, nn[name])
        delta = bm > 0 ? 100 * (nm - bm) / bm : 0
        printf "%-55s baseline %14.0f ns/op   new %14.0f ns/op   %+7.1f%%\n", name, bm, nm, delta
        compared++
        if (delta > tol) {
            printf "FAIL: %s regressed %.1f%% (tolerance %d%%)\n", name, delta, tol
            fail = 1
        }
    }
    for (name in nan) {
        if (!(name in ban)) continue
        bm = median(bav, name, ban[name])
        nm = median(nav, name, nan[name])
        delta = bm > 0 ? 100 * (nm - bm) / bm : 0
        printf "%-55s baseline %14.2f ns/AS   new %14.2f ns/AS   %+7.1f%%\n", name, bm, nm, delta
        if (delta > tol) {
            printf "FAIL: %s ns/AS regressed %.1f%% (tolerance %d%%)\n", name, delta, tol
            fail = 1
        }
    }
    # Percent deltas explode near zero (0 → 1 alloc is +inf%), so the
    # alloc gate also requires material absolute growth before failing.
    for (name in nln) {
        if (!(name in bln)) continue
        bm = median(blv, name, bln[name])
        nm = median(nlv, name, nln[name])
        delta = bm > 0 ? 100 * (nm - bm) / bm : (nm > 0 ? 100 : 0)
        printf "%-55s baseline %14.0f allocs/op  new %14.0f allocs/op %+7.1f%%\n", name, bm, nm, delta
        if (delta > tol && nm - bm > 4) {
            printf "FAIL: %s allocs/op regressed %.1f%% (tolerance %d%%)\n", name, delta, tol
            fail = 1
        }
    }
    # B/op gets the same two-part gate as allocs/op: a percent threshold
    # plus an absolute floor (1 KiB) so benchmarks that allocate almost
    # nothing cannot fail on a few bytes of jitter.
    for (name in nbn) {
        if (!(name in bbn)) continue
        bm = median(bbv, name, bbn[name])
        nm = median(nbv, name, nbn[name])
        delta = bm > 0 ? 100 * (nm - bm) / bm : (nm > 0 ? 100 : 0)
        printf "%-55s baseline %14.0f B/op       new %14.0f B/op      %+7.1f%%\n", name, bm, nm, delta
        if (delta > tol && nm - bm > 1024) {
            printf "FAIL: %s B/op regressed %.1f%% (tolerance %d%%)\n", name, delta, tol
            fail = 1
        }
    }
    for (name in bn) if (!(name in nn)) {
        printf "FAIL: benchmark %s present in baseline but missing from new run\n", name
        fail = 1
    }
    if (compared == 0) {
        print "FAIL: no common benchmarks to compare"
        fail = 1
    }
    exit fail
}
' "$BASE" "$NEW"
