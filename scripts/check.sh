#!/bin/sh
# Repository health check: vet, build, race-enabled tests, and a benchmark
# smoke run. Used before sending changes; CI can call it directly.
#
#   ./scripts/check.sh
#
# FLATNET_BENCH_SCALE (default 0.02138) controls the benchmark topology size.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt"
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -race -short (bgpsim + serve, scalar leak path)"
# The race run above exercises the batch leak engine; this pass forces the
# scalar fallback so both sides of the FLATNET_SCALAR_LEAK switch stay
# race-clean.
FLATNET_SCALAR_LEAK=1 go test -race -short ./internal/bgpsim/ ./internal/serve/

echo "==> go test -race -short (core + serve, class collapse disabled)"
# Sweeps ride the class-collapsed path by default; this pass pins the
# uncollapsed batch dispatch so both sides of the FLATNET_NO_CLASS_COLLAPSE
# switch stay race-clean.
FLATNET_NO_CLASS_COLLAPSE=1 go test -race -short ./internal/core/ ./internal/serve/

echo "==> snapshot decoder fuzz (10s)"
# Short coverage-guided pass over the v1/v2 snapshot decoders; the seed
# corpus carries valid snapshots plus known corruption shapes, so even a
# brief run exercises every section parser against hostile input.
go test -run '^$' -fuzz 'FuzzSnapshotDecode' -fuzztime 10s ./internal/snapshot/

echo "==> delta decoder fuzz (5s)"
# The delta codec is fed over the network (POST /v1/evolve), so its
# fail-closed decoder gets its own hostile-input pass.
go test -run '^$' -fuzz 'FuzzDeltaDecode' -fuzztime 5s ./internal/snapshot/

echo "==> cluster wire decoder fuzz (5s)"
# The binary sweep/leak frames cross the network on every cluster shard;
# the decoders must reject truncation, corruption, bad magic/version, and
# trailing bytes without ever panicking.
go test -run '^$' -fuzz 'FuzzWireDecode' -fuzztime 5s ./internal/cluster/

echo "==> benchmark smoke (1 iteration)"
go test -bench 'BenchmarkLeakSweep|BenchmarkLeakTrialsBatch|BenchmarkPropagateNoAlloc|BenchmarkPropagationSingleOrigin|BenchmarkReachabilityAll|BenchmarkClassIndexBuild|BenchmarkTable1TopReachability|BenchmarkEnvColdStart$|BenchmarkSnapshotLoad|BenchmarkEvolveDelta$|BenchmarkTimelineSeries|BenchmarkWireCounts' \
    -benchtime 1x -benchmem -run '^$' .

echo "==> snapshot build/load smoke"
# Freeze a small world (plans + rDNS, no trace corpora for speed), inspect
# it, and run an experiment from it — the fast cold-start path end to end.
SNAPDIR="$(mktemp -d)"
trap 'rm -rf "$SNAPDIR"' EXIT
go build -o "$SNAPDIR/flatnet" ./cmd/flatnet
"$SNAPDIR/flatnet" snapshot build -scale 0.01425 -traces none -o "$SNAPDIR/world.snap"
"$SNAPDIR/flatnet" snapshot info "$SNAPDIR/world.snap"
"$SNAPDIR/flatnet" run -snapshot "$SNAPDIR/world.snap" table1 > /dev/null

echo "==> timeline delta smoke"
# One year frozen, one growth delta derived and applied: the evolved
# snapshot must be byte-identical to building the next year fresh.
"$SNAPDIR/flatnet" timeline build -year 2016 -scale 0.012 -o "$SNAPDIR/y2016.snap" > /dev/null
"$SNAPDIR/flatnet" timeline delta -base "$SNAPDIR/y2016.snap" -o "$SNAPDIR/step.snapd" > /dev/null
"$SNAPDIR/flatnet" snapshot info -verify "$SNAPDIR/step.snapd"
"$SNAPDIR/flatnet" timeline apply -base "$SNAPDIR/y2016.snap" -delta "$SNAPDIR/step.snapd" -o "$SNAPDIR/y2017.snap" > /dev/null
"$SNAPDIR/flatnet" timeline build -year 2017 -scale 0.012 -o "$SNAPDIR/y2017-fresh.snap" > /dev/null
cmp "$SNAPDIR/y2017.snap" "$SNAPDIR/y2017-fresh.snap"

echo "==> all checks passed"
