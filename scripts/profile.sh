#!/bin/sh
# Profiling harness: runs one benchmark under the CPU and heap profilers
# and writes the raw pprof files plus ready-to-read top-function summaries,
# so a perf investigation starts from `cat` instead of an interactive
# session:
#
#   ./scripts/profile.sh [bench-regex] [out-dir]
#
# defaults: BenchmarkReachabilityAllFullScale, profiles/
#
#   profiles/cpu.pprof, heap.pprof   raw profiles (go tool pprof)
#   profiles/cpu-top.txt             top 30 functions by cumulative CPU
#   profiles/heap-top.txt            top 30 functions by allocated space
#   profiles/bench.txt               the benchmark output itself
#
# FLATNET_BENCH_SCALE and the other bench env knobs apply unchanged; the
# FullScale benchmarks pin scale 1.0 regardless. Pass a scaled-down bench
# (e.g. BenchmarkReachabilityAll\$) for a quick look on slow machines.
set -eu

cd "$(dirname "$0")/.."

BENCH="${1:-BenchmarkReachabilityAllFullScale}"
OUT="${2:-profiles}"
mkdir -p "$OUT"

go test -run '^$' -bench "$BENCH" -benchmem \
	-cpuprofile "$OUT/cpu.pprof" -memprofile "$OUT/heap.pprof" \
	-o "$OUT/flatnet-bench.test" . | tee "$OUT/bench.txt"

go tool pprof -top -nodecount 30 -cum "$OUT/flatnet-bench.test" "$OUT/cpu.pprof" > "$OUT/cpu-top.txt"
go tool pprof -top -nodecount 30 -sample_index=alloc_space "$OUT/flatnet-bench.test" "$OUT/heap.pprof" > "$OUT/heap-top.txt"

echo "wrote $OUT/cpu.pprof, $OUT/heap.pprof and top summaries:"
head -12 "$OUT/cpu-top.txt"
