package flatnet_bench

import (
	"context"
	"sync"
	"testing"

	"flatnet/internal/astopo"
	"flatnet/internal/core"
	"flatnet/internal/experiments"
	"flatnet/internal/topogen"
)

// Longitudinal benchmarks: the incremental recompute engine behind
// `flatnet timeline` and POST /v1/evolve. BenchmarkEvolveDelta pins the
// headline claim — evolving an all-AS count vector across a single-link
// delta must beat a fresh full sweep by a wide margin — and
// BenchmarkTimelineSeries times the whole 2015–2025 fold.

// singleLinkWorlds derives a "next" dataset from ds by adding one P2P
// link between two unlinked stub ASes — the smallest possible structural
// delta, and the case incremental recomputation exists for.
func singleLinkWorlds(b *testing.B, ds core.Dataset) (core.Dataset, core.EvolveDelta) {
	b.Helper()
	g := ds.Graph
	n := g.NumASes()
	stub := func(a astopo.ASN) bool {
		return !ds.Tier1.Has(a) && !ds.Tier2.Has(a) && len(g.Customers(a)) == 0
	}
	var la, lb astopo.ASN
	found := false
	for i := n - 1; i >= 1 && !found; i-- {
		a := g.ASNAt(i)
		if !stub(a) {
			continue
		}
		for j := i - 1; j >= 0; j-- {
			c := g.ASNAt(j)
			if !stub(c) {
				continue
			}
			if _, ok := g.HasLink(a, c); !ok {
				la, lb, found = a, c, true
				break
			}
		}
	}
	if !found {
		b.Fatal("no unlinked stub pair in the benchmark world")
	}
	link := astopo.Link{A: la, B: lb, Rel: astopo.P2P}
	links := append(append([]astopo.Link(nil), g.Links()...), link)
	ng := astopo.NewGraph(n, len(links))
	for _, l := range links {
		ng.MustAddLink(l.A, l.B, l.Rel)
	}
	return core.Dataset{Graph: ng, Tier1: ds.Tier1, Tier2: ds.Tier2},
		core.EvolveDelta{AddedLinks: []astopo.Link{link}}
}

// benchEvolveDelta measures both sides of the incremental-vs-full trade
// on one dataset: "incremental" evolves the previous world's count vector
// across the single-link delta, "full" re-sweeps the next world from
// scratch. Both sub-benchmarks produce the identical count vector (the
// engine is trial-exact), so ns/op and ns/AS compare like for like.
func benchEvolveDelta(b *testing.B, prev core.Dataset) {
	ctx := context.Background()
	next, delta := singleLinkWorlds(b, prev)
	prevM, nextM := core.New(prev), core.New(next)
	n := prev.Graph.NumASes()
	prevCounts, err := prevM.ReachabilityRangeCtx(ctx, core.HierarchyFree, 0, n, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, stats, err := core.EvolveCounts(ctx, prevM, nextM, core.HierarchyFree, prevCounts, delta)
			if err != nil {
				b.Fatal(err)
			}
			if stats.FullSweep {
				b.Fatalf("single-link delta fell back to a full sweep: %+v", stats)
			}
		}
		reportNsPerAS(b, n)
	})
	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := nextM.ReachabilityRangeCtx(ctx, core.HierarchyFree, 0, next.Graph.NumASes(), 0); err != nil {
				b.Fatal(err)
			}
		}
		reportNsPerAS(b, n)
	})
}

func BenchmarkEvolveDelta(b *testing.B) {
	e := benchEnv(b)
	benchEvolveDelta(b, core.Dataset{Graph: e.In2020.Graph, Tier1: e.In2020.Tier1, Tier2: e.In2020.Tier2})
}

// BenchmarkEvolveDeltaFullScale pins the trade at the paper's true scale
// (69,488 ASes): this is where the acceptance bar lives — incremental
// must beat full by at least 5x on a single-link delta.
func BenchmarkEvolveDeltaFullScale(b *testing.B) {
	e := fullScaleEnv(b)
	benchEvolveDelta(b, core.Dataset{Graph: e.In2020.Graph, Tier1: e.In2020.Tier1, Tier2: e.In2020.Tier2})
}

var (
	timelineOnce sync.Once
	timelineErr  error
)

// BenchmarkTimelineSeries folds the full 2015–2025 preset series — eleven
// worlds, ten growth deltas, one bootstrap sweep plus ten evolved steps —
// at the benchmark scale. One op is the whole series, i.e. everything
// `flatnet timeline report` does before printing.
func BenchmarkTimelineSeries(b *testing.B) {
	// Fail fast (outside the timer) if the series itself is broken.
	timelineOnce.Do(func() { _, timelineErr = topogen.GenerateYear(topogen.TimelineFirstYear, benchScale) })
	if timelineErr != nil {
		b.Fatal(timelineErr)
	}
	b.ResetTimer()
	var nASes int
	for i := 0; i < b.N; i++ {
		res, err := experiments.TimelineAt(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		nASes = res.Rows[len(res.Rows)-1].ASes
	}
	reportNsPerAS(b, nASes)
}
