package flatnet_bench

import (
	"math/rand"
	"testing"

	"flatnet/internal/cluster"
)

// BenchmarkWireCounts prices the binary wire codec by itself: encoding and
// decoding one maximum-size sweep shard (64 blocks × 64 lanes = 4096
// counts, the ShardBlocks cap) with values shaped like real reachability
// counts — large magnitudes, small neighbor deltas, which is the case the
// zig-zag delta varint layout is built for. Encode reuses one buffer and
// decode writes into one preallocated slice, so steady state on both sides
// is zero allocations; B/op here is the wire's contribution to the cluster
// hot path.
func BenchmarkWireCounts(b *testing.B) {
	const n = 4096
	counts := make([]int, n)
	rng := rand.New(rand.NewSource(1))
	for i := range counts {
		counts[i] = 40000 + rng.Intn(30000)
	}
	frame := cluster.AppendCounts(nil, counts)

	b.Run("encode", func(b *testing.B) {
		buf := make([]byte, 0, cap(frame))
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = cluster.AppendCounts(buf[:0], counts)
		}
	})
	b.Run("decode", func(b *testing.B) {
		dst := make([]int, n)
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cluster.DecodeCountsInto(dst, frame); err != nil {
				b.Fatal(err)
			}
		}
	})
}
